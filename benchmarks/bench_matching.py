"""Matching front-end throughput: batched vs per-claim keyword matching.

The workload mirrors the paper's setting at scale: one large relational
table whose categorical values draw on a shared vocabulary (so claim
keywords hit many fragment postings — the regime where per-claim Python
scoring loops dominate ingestion), plus documents that summarize that
table. Two measurements, written to ``BENCH_matching.json``:

- ``matching``: claims/sec through ``keyword_match`` (per-claim oracle)
  vs ``keyword_match_batch`` (one vectorized keyword->fragment scoring
  pass per document) against the same compiled index;
- ``verdicts``: a small end-to-end ``run_corpus`` with batching on and
  off, asserting verdict identity.

Score equality between the two paths is asserted unconditionally and
bit-exact (same fragments, same order, equal floats). The >= 3x speedup
gate applies when NumPy is available and the workload is full-size
(``BENCH_MATCHING_ROWS`` >= 4000, the default — smoke runs are too small
for the vectorized kernels to amortize).
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.core.config import AggCheckerConfig
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.db import Column, ColumnType, Database, Table
from repro.fragments import FragmentIndex, extract_fragments
from repro.fragments.extract import ExtractionConfig
from repro.harness import run_corpus
from repro.harness.reporting import format_table
from repro.ir.index import numpy_available
from repro.matching import keyword_match, keyword_match_batch
from repro.text import detect_claims, parse_html

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_matching.json"

_ADJECTIVES = [
    "red", "green", "blue", "quick", "lazy", "bright", "dark", "smooth",
    "rough", "tall", "short", "wide", "narrow", "young", "old", "fast",
    "slow", "warm", "cold", "loud",
]
_NOUNS = [
    "team", "player", "coach", "city", "league", "season", "game", "match",
    "club", "region", "district", "state", "party", "survey", "school",
    "company", "airline", "movie", "song", "book",
]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _build_database(rows: int, seed: int = 7) -> Database:
    """A wide categorical table with heavily shared value vocabulary."""
    rng = random.Random(seed)
    values = [f"{a} {n}" for a in _ADJECTIVES for n in _NOUNS]
    data = [
        (
            rng.choice(values),
            rng.choice(values),
            rng.choice(values),
            rng.randint(1, 40),
        )
        for _ in range(rows)
    ]
    table = Table(
        "records",
        [
            Column("alpha"),
            Column("beta"),
            Column("gamma"),
            Column("score", ColumnType.NUMERIC),
        ],
        data,
    )
    return Database("bench_matching", [table])


def _build_documents(n_docs: int, claims_per_doc: int, seed: int = 11):
    """HTML documents summarizing the table (one claim per sentence)."""
    rng = random.Random(seed)
    documents = []
    for doc_index in range(n_docs):
        sentences = []
        for _ in range(claims_per_doc):
            count = rng.randint(2, 99)
            alpha = rng.choice(_ADJECTIVES)
            beta = rng.choice(_NOUNS)
            gamma = rng.choice(_NOUNS)
            sentences.append(
                f"There were {count} records for the {alpha} {beta} "
                f"in the {gamma} group."
            )
        html = (
            f"<title>Summary report {doc_index}</title>"
            f"<h1>Scores and totals</h1><p>{' '.join(sentences)}</p>"
        )
        documents.append(detect_claims(parse_html(html)))
    return documents


def _assert_identical(oracle, batch, claims) -> None:
    for claim in claims:
        o, b = oracle[claim], batch[claim]
        assert list(o.functions.items()) == list(b.functions.items()), claim
        assert list(o.columns.items()) == list(b.columns.items()), claim
        assert list(o.predicates.items()) == list(b.predicates.items()), claim


def _verdict_signature(run) -> list[list[tuple]]:
    return [
        [
            (v.status.value, str(v.top_query), v.top_result)
            for v in result.report.verdicts
        ]
        for result in run.results
    ]


def test_matching_throughput(capsys):
    rows = _env_int("BENCH_MATCHING_ROWS", 4000)
    n_docs = _env_int("BENCH_MATCHING_DOCS", 6)
    claims_per_doc = _env_int("BENCH_MATCHING_CLAIMS", 12)
    repeats = _env_int("BENCH_MATCHING_REPEATS", 5)

    database = _build_database(rows)
    catalog = extract_fragments(
        database, ExtractionConfig(max_distinct_per_column=500)
    )
    index = FragmentIndex(catalog)
    index.compiled()  # compile outside the timed region: built once per db
    documents = _build_documents(n_docs, claims_per_doc)
    n_claims = sum(len(claims) for claims in documents)

    # Score equality, asserted before timing on every document.
    for claims in documents:
        _assert_identical(
            keyword_match(claims, index),
            keyword_match_batch(claims, index),
            claims,
        )

    started = time.perf_counter()
    for _ in range(repeats):
        for claims in documents:
            keyword_match(claims, index)
    per_claim_seconds = (time.perf_counter() - started) / repeats

    started = time.perf_counter()
    for _ in range(repeats):
        for claims in documents:
            keyword_match_batch(claims, index)
    batched_seconds = (time.perf_counter() - started) / repeats

    speedup = per_claim_seconds / max(batched_seconds, 1e-9)
    matching = {
        "rows": rows,
        "predicate_fragments": len(catalog.predicates),
        "documents": n_docs,
        "claims": n_claims,
        "per_claim_claims_per_sec": round(
            n_claims / max(per_claim_seconds, 1e-9)
        ),
        "batched_claims_per_sec": round(n_claims / max(batched_seconds, 1e-9)),
        "speedup": round(speedup, 2),
        "scores_identical": True,
    }

    # End-to-end verdict identity: full pipeline, batching on vs off.
    corpus = generate_corpus(CorpusConfig(n_articles=3))
    run_on = run_corpus(corpus, AggCheckerConfig(batch_matching=True))
    run_off = run_corpus(corpus, AggCheckerConfig(batch_matching=False))
    assert _verdict_signature(run_on) == _verdict_signature(run_off)
    verdicts = {
        "cases": len(corpus.cases),
        "claims": run_on.metrics.n_claims,
        "identical": True,
    }

    payload = {
        "benchmark": "batched matching front end vs per-claim oracle",
        "numpy": numpy_available(),
        "matching": matching,
        "verdicts": verdicts,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    table = format_table(
        "Matching front-end throughput",
        ["Path", "Claims/s", "Speedup"],
        [
            ["per-claim", f"{matching['per_claim_claims_per_sec']}", ""],
            [
                "batched",
                f"{matching['batched_claims_per_sec']}",
                f"x{matching['speedup']}",
            ],
        ],
    )
    with capsys.disabled():
        print("\n" + table)
        print(
            f"{n_claims} claims, {len(catalog.predicates)} predicate "
            f"fragments; verdicts identical over {verdicts['claims']} "
            f"corpus claims"
        )
        print(f"written: {OUTPUT}")

    # The acceptance gate: one vectorized pass per document must deliver
    # >= 3x matching throughput. NumPy-only; smoke workloads are too
    # small for the kernels to amortize their setup.
    if numpy_available() and rows >= 4000:
        assert speedup >= 3.0, payload
