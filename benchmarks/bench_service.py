"""Verification-service throughput: cold vs warm pool vs incremental tier.

Drives a live ``VerificationServer`` on a loopback port — the deployment
shape of ``python -m repro serve`` — through the request ladder an
editing loop produces, and writes ``BENCH_service.json``:

- ``cold``: first request per database on a fresh service. Pays full
  startup: fragment extraction, index compilation, cube execution.
- ``warm``: the same documents re-checked with the incremental tier
  declined (``"incremental": false``) — isolates the warm
  ``CheckerPool`` (compiled index + in-memory result cache reuse).
- ``incremental``: the same documents re-checked through the memo tier —
  every claim served from the (database fingerprint, claim fingerprint,
  config fingerprint) cache without touching the engine.
- ``incremental_edit``: one sentence edited per document — exactly one
  claim re-evaluated per request, the rest cached.

Verdict identity is asserted before any number is reported: every tier's
per-claim payloads must be bit-identical to ``python -m repro check
--json`` on the same CSV/article files. Gates: the warm path must beat
cold by >= 1.5x and the incremental path must beat warm by >= 3x at the
full default workload (smoke runs via ``BENCH_SERVICE_*`` env knobs skip
the gates; they are CPU-count independent, so they hold on 1-CPU
runners).
"""

from __future__ import annotations

import csv
import io
import json
import os
import random
import threading
import time
import urllib.request
from pathlib import Path

from repro.cli import main as cli_main
from repro.harness.reporting import format_table
from repro.ir.index import numpy_available
from repro.service import create_server

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_service.json"

_ADJECTIVES = [
    "red", "green", "blue", "quick", "lazy", "bright", "dark", "smooth",
    "rough", "tall", "short", "wide", "narrow", "young", "old", "fast",
]
_NOUNS = [
    "team", "player", "coach", "city", "league", "season", "game", "match",
    "club", "region", "district", "state", "party", "survey", "school",
]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _write_database_csv(path: Path, rows: int, seed: int) -> None:
    rng = random.Random(seed)
    values = [f"{a} {n}" for a in _ADJECTIVES for n in _NOUNS]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["alpha", "beta", "category", "score"])
    for _ in range(rows):
        writer.writerow(
            [
                rng.choice(values),
                rng.choice(values),
                rng.choice(_NOUNS),
                rng.randint(1, 40),
            ]
        )
    path.write_text(buffer.getvalue())


def _write_article(path: Path, doc_index: int, claims: int, seed: int) -> None:
    rng = random.Random(seed)
    sentences = []
    for _ in range(claims):
        count = rng.randint(2, 99)
        alpha = rng.choice(_ADJECTIVES)
        beta = rng.choice(_NOUNS)
        category = rng.choice(_NOUNS)
        sentences.append(
            f"There were {count} records for the {alpha} {beta} "
            f"in the {category} group."
        )
    path.write_text(
        f"<title>Service report {doc_index}</title>"
        f"<h1>Totals by category</h1><p>{' '.join(sentences)}</p>"
    )


def _post_check(url: str, payload: dict) -> list[dict]:
    request = urllib.request.Request(
        url + "/check",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return [json.loads(line) for line in response.read().splitlines()]


def _claims_of(events: list[dict]) -> list[dict]:
    ordered = sorted(
        (e for e in events if e["event"] == "claim"), key=lambda e: e["index"]
    )
    return [e["claim"] for e in ordered]


def _cli_claims(capsys, csv_path: Path, article_path: Path) -> list[dict]:
    code = cli_main(
        ["check", "--csv", str(csv_path), "--article", str(article_path),
         "--json"]
    )
    assert code in (0, 1)
    return json.loads(capsys.readouterr().out)["claims"]


def _timed_round(url: str, jobs: list[dict]) -> tuple[list[list[dict]], float]:
    started = time.perf_counter()
    results = [_post_check(url, job) for job in jobs]
    return results, time.perf_counter() - started


def test_service_throughput(capsys, tmp_path):
    n_databases = _env_int("BENCH_SERVICE_DBS", 3)
    rows = _env_int("BENCH_SERVICE_ROWS", 2000)
    claims_per_doc = _env_int("BENCH_SERVICE_CLAIMS", 8)
    repeats = _env_int("BENCH_SERVICE_REPEATS", 3)
    full_size = rows >= 2000 and n_databases >= 3

    jobs: list[dict] = []
    files: list[tuple[Path, Path]] = []
    for index in range(n_databases):
        csv_path = tmp_path / f"records_{index}.csv"
        article_path = tmp_path / f"report_{index}.html"
        _write_database_csv(csv_path, rows, seed=100 + index)
        _write_article(article_path, index, claims_per_doc, seed=200 + index)
        files.append((csv_path, article_path))
        jobs.append(
            {"csv": [str(csv_path)], "article_path": str(article_path)}
        )

    server = create_server(port=0)
    thread = threading.Thread(target=server.serve_forever)
    thread.start()
    try:
        cold_results, cold_seconds = _timed_round(server.url, jobs)

        # Follow-up requests reference registered data by the fingerprint
        # the cold round echoed — the editing-loop shape of the protocol.
        warm_jobs = []
        incremental_jobs = []
        for job, events in zip(jobs, cold_results):
            fingerprint = events[0]["database_fingerprint"]
            reference = {
                "database": fingerprint,
                "article_path": job["article_path"],
            }
            warm_jobs.append(dict(reference, incremental=False))
            incremental_jobs.append(reference)

        warm_results, _ = _timed_round(server.url, warm_jobs)  # steady-state
        warm_seconds = min(
            _timed_round(server.url, warm_jobs)[1] for _ in range(repeats)
        )

        incremental_results, _ = _timed_round(server.url, incremental_jobs)
        incremental_seconds = min(
            _timed_round(server.url, incremental_jobs)[1]
            for _ in range(repeats)
        )

        # Edit the *last* sentence per document: exactly one claim
        # re-evaluates. (Editing the first sentence would correctly
        # invalidate every claim — it is part of each claim's
        # paragraph-start keyword context.)
        for index, (_, article_path) in enumerate(files):
            text = article_path.read_text()
            head, _, tail = text.rpartition("There were")
            edited = head + "We counted" + tail
            assert edited != text
            article_path.write_text(edited)
        edit_results, edit_seconds = _timed_round(server.url, incremental_jobs)
    finally:
        server.shutdown_gracefully()
        thread.join(timeout=30)

    # Bit-identity of every tier against the one-shot CLI oracle.
    n_claims = 0
    for job_index, (csv_path, article_path) in enumerate(files):
        # The articles were edited in place above; restore for the oracle
        # of the unedited tiers by comparing against the *served* claims.
        cold = _claims_of(cold_results[job_index])
        assert cold == _claims_of(warm_results[job_index])
        assert cold == _claims_of(incremental_results[job_index])
        edited_events = edit_results[job_index]
        summary = edited_events[-1]
        assert summary["evaluated_claims"] == 1, summary
        assert summary["cached_claims"] == len(cold) - 1, summary
        # No CLI-oracle comparison for the edit tier: cached verdicts
        # keep their original document context by design, and the fresh
        # claim is inferred in a 1-claim batch — only a non-incremental
        # request guarantees the jointly-inferred CLI result (see
        # repro/service/incremental.py). The guaranteed properties are
        # the counts above and the re-evaluated claim's index/status
        # being present and well-formed.
        fresh_claims = _claims_of(edited_events)
        assert all(claim["status"] for claim in fresh_claims)
        n_claims += len(cold)

    # CLI oracle for the unedited tiers: regenerate the original articles.
    for index, (csv_path, article_path) in enumerate(files):
        _write_article(article_path, index, claims_per_doc, seed=200 + index)
        oracle = _cli_claims(capsys, csv_path, article_path)
        assert _claims_of(cold_results[index]) == oracle, index

    def tier(seconds: float, baseline: float | None = None) -> dict:
        payload = {
            "seconds": round(seconds, 4),
            "claims_per_sec": round(n_claims / max(seconds, 1e-9), 1),
        }
        if baseline is not None:
            payload["speedup_vs_cold"] = round(
                baseline / max(seconds, 1e-9), 2
            )
        return payload

    warm_speedup = cold_seconds / max(warm_seconds, 1e-9)
    incremental_speedup_vs_warm = warm_seconds / max(incremental_seconds, 1e-9)
    results = {
        "cold": tier(cold_seconds),
        "warm": tier(warm_seconds, cold_seconds),
        "incremental": tier(incremental_seconds, cold_seconds),
        "incremental_edit": tier(edit_seconds, cold_seconds),
    }
    results["incremental"]["speedup_vs_warm"] = round(
        incremental_speedup_vs_warm, 2
    )
    payload = {
        "benchmark": "verification service: cold vs warm pool vs incremental",
        "numpy": numpy_available(),
        "cpu_count": os.cpu_count() or 1,
        "databases": n_databases,
        "rows_per_database": rows,
        "claims": n_claims,
        "verdicts_identical": True,
        "results": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    rows_out = [
        [name, f"{entry['seconds']:.3f}s", f"{entry['claims_per_sec']:.0f}",
         f"x{entry.get('speedup_vs_cold', 1.0):.2f}"]
        for name, entry in results.items()
    ]
    with capsys.disabled():
        print(
            "\n"
            + format_table(
                "Verification service throughput",
                ["Tier", "Wall", "Claims/s", "vs cold"],
                rows_out,
            )
        )
        print(f"written: {OUTPUT}")

    # Gates (hardware-independent: all tiers run on the same machine).
    if numpy_available() and full_size:
        assert warm_speedup >= 1.5, payload
        assert incremental_speedup_vs_warm >= 3.0, payload


def test_service_resilience_smoke(tmp_path):
    """Liveness under a poisoned in-flight request (writes no JSON).

    One request is slowed and poisoned via injected faults; while it is
    in flight, ``GET /health`` must keep answering (monitoring never
    queues behind verification), and the poisoned stream itself must
    still run to its summary with the bad claim isolated as an error
    event. Deliberately separate from the throughput benchmark so
    ``BENCH_service.json`` and its regression ratios never include
    fault-injected timings.
    """
    import urllib.error

    from repro.faults import FaultSpec, active

    csv_path = tmp_path / "records.csv"
    article_path = tmp_path / "report.html"
    _write_database_csv(csv_path, rows=200, seed=100)
    _write_article(article_path, 0, claims=4, seed=200)

    server = create_server(port=0)
    thread = threading.Thread(target=server.serve_forever)
    thread.start()
    results: list[list[dict]] = []
    errors: list[BaseException] = []

    def poisoned_client() -> None:
        try:
            results.append(
                _post_check(
                    server.url,
                    {
                        "csv": [str(csv_path)],
                        "article_path": str(article_path),
                    },
                )
            )
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    try:
        # The sleep stalls the joint batch (one firing) so health probes
        # overlap a busy server; the raise budget of 2 poisons the joint
        # batch AND the first claim's isolated fallback, so exactly one
        # claim surfaces as an error event.
        with active(
            FaultSpec("checker.stage", "sleep", match="match",
                      seconds=1.0, times=1),
            FaultSpec("checker.claim", "raise", match="*", times=2),
        ):
            client = threading.Thread(target=poisoned_client)
            client.start()
            deadline = time.perf_counter() + 30
            probes = 0
            while client.is_alive() and time.perf_counter() < deadline:
                with urllib.request.urlopen(
                    server.url + "/health", timeout=5
                ) as response:
                    health = json.loads(response.read())
                assert health["status"] in ("ok", "degraded")
                probes += 1
                time.sleep(0.05)
            client.join(timeout=60)
        assert probes > 0
        assert not errors
        assert results and results[0][-1]["event"] == "summary"
        assert results[0][-1]["errors"] == 1
        assert [e for e in results[0] if e["event"] == "error"]
    finally:
        server.shutdown_gracefully()
        thread.join(timeout=30)
