"""Table 6: processing-time ladder — naive, + query merging, + caching.

Paper: naive 2587s total / 2415s query; + merging 151s / 39s (x61.9);
+ caching 128s / 18s (x2.1). The reproduction measures the same ladder on
a corpus subset: per-mode end-to-end time and pure query-processing time.
"""

from __future__ import annotations

import time

from repro.core.config import AggCheckerConfig
from repro.db.engine import EngineConfig, ExecutionMode
from repro.harness import run_corpus
from repro.harness.reporting import format_table

#: Naive execution is orders of magnitude slower; a small slice suffices
#: to measure the ratio.
LADDER_CASES = 4


def _ladder_config(mode: ExecutionMode, reuse: bool) -> AggCheckerConfig:
    return AggCheckerConfig(engine=EngineConfig(mode=mode)).with_em(reuse_results=reuse)


def test_table6_processing(benchmark, corpus, capsys):
    from repro.corpus.generator import Corpus

    # The ladder isolates engine strategy effects; exclude the 90-column
    # survey theme whose fragment extraction dominates either way.
    ladder_corpus = Corpus(
        [c for c in corpus.cases if c.theme_name != "developer_survey"][
            :LADDER_CASES
        ]
    )
    rows = []
    query_times = {}
    for label, mode, reuse in (
        ("Naive", ExecutionMode.NAIVE, False),
        ("+ Query Merging", ExecutionMode.MERGED, False),
        ("+ Caching", ExecutionMode.MERGED_CACHED, True),
    ):
        started = time.perf_counter()
        run = run_corpus(ladder_corpus, _ladder_config(mode, reuse))
        total = time.perf_counter() - started
        query_seconds = run.engine_stats.query_seconds
        query_times[label] = query_seconds
        speedup = ""
        if label == "+ Query Merging":
            speedup = f"x{query_times['Naive'] / max(query_seconds, 1e-9):.1f}"
        elif label == "+ Caching":
            speedup = (
                f"x{query_times['+ Query Merging'] / max(query_seconds, 1e-9):.1f}"
            )
        rows.append(
            [
                label,
                f"{total:.1f}s",
                f"{query_seconds:.2f}s",
                speedup,
                run.engine_stats.physical_queries,
            ]
        )
    rows.append(["paper: Naive", "2587s", "2415s", "", ""])
    rows.append(["paper: + Query Merging", "151s", "39s", "x61.9", ""])
    rows.append(["paper: + Caching", "128s", "18s", "x2.1", ""])

    # Timed unit: one merged+cached batch evaluation.
    from repro.core.checker import AggChecker

    case = corpus.cases[0]
    checker = AggChecker(case.database)
    benchmark(lambda: checker.check_claims(case.document, case.claims))

    table = format_table(
        f"Table 6: run time ladder ({LADDER_CASES} cases)",
        ["Version", "Total", "Query", "Speedup", "Physical queries"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    # Shape: merging must dominate; caching adds another factor.
    assert query_times["Naive"] > 5 * query_times["+ Query Merging"]
    assert query_times["+ Query Merging"] >= query_times["+ Caching"]
