"""Figure 12: parameter pT versus recall and precision.

Paper: lowering pT makes the system more suspicious — recall rises,
precision falls; pT = 0.999 was chosen as the operating point.
"""

from __future__ import annotations

from repro.harness.ablations import pt_ladder
from repro.harness.reporting import format_series


def test_fig12_pt_sweep(benchmark, sweep_cache, capsys):
    recalls = []
    precisions = []
    f1s = []
    values = []
    for label, config in pt_ladder():
        run = sweep_cache(f"pt:{label}", config)
        metrics = run.metrics
        value = config.em.p_true
        values.append(value)
        # Label with the exact pT (a float cell would round 0.999 -> 1.0).
        recalls.append((str(value), round(100 * metrics.recall, 1)))
        precisions.append((str(value), round(100 * metrics.precision, 1)))
        f1s.append((str(value), round(100 * metrics.f1, 1)))

    run = sweep_cache("pt:pT = 0.999", pt_ladder()[3][1])
    benchmark(lambda: run.metrics.f1)

    with capsys.disabled():
        print(
            "\n"
            + format_series(
                "Figure 12: pT vs recall/precision/F1 (sweep subset)",
                {
                    "recall %": recalls,
                    "precision %": precisions,
                    "f1 %": f1s,
                },
            )
        )

    # Shape: the lowest pT is at least as suspicious (recall) as the
    # highest, and the highest pT has the best precision.
    assert recalls[0][1] >= recalls[-1][1] - 1e-9
    assert precisions[-1][1] >= precisions[0][1] - 1e-9
