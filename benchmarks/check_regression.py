"""Benchmark regression gate: fresh BENCH_*.json vs committed baselines.

CI (and anyone locally) runs the benchmark suite, which rewrites the
``BENCH_*.json`` files in the working tree; this script then compares
each file's *headline ratios* (speedups, hit rates) against the
committed version (``git show <ref>:<file>`` by default, or a snapshot
directory via ``--baseline-dir``) and fails if any ratio dropped below
``tolerance * baseline``.

Comparisons are self-guarding rather than vacuous-or-flaky:

- a fresh file produced under a different workload than the baseline
  (smoke-sized rows/cases via ``BENCH_*`` env knobs, or NumPy absent) is
  **skipped** with a note — smoke ratios are not comparable to full-size
  ones;
- parallelism-dependent ratios are skipped when the runner has fewer
  CPUs than the benchmark's worker count (the PR 2 ``cpu_count`` guard),
  so 1-CPU runners pass cleanly;
- a missing fresh file means the benchmark did not run — skipped, not
  failed (the CI matrix decides which benchmarks each job runs); a fresh
  file byte-identical to the baseline means the benchmark never rewrote
  the checked-out copy (every payload embeds wall-clock timings), which
  is likewise skipped instead of reported as a vacuous "ok".

Exit status: 0 when nothing regressed, 1 otherwise.

Usage::

    python benchmarks/check_regression.py [--tolerance 0.5]
        [--baseline-ref HEAD] [--baseline-dir DIR] [FILES ...]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default relative tolerance: a headline ratio may lose up to half its
#: baseline value before the gate trips — benchmarks on shared CI
#: runners are noisy, and the gate is for catching collapses (a lost
#: vectorized path, an accidentally disabled cache), not 10% wobbles.
DEFAULT_TOLERANCE = 0.5


def _params(payload: dict, *keys: str) -> tuple:
    """The workload signature under which a payload was produced."""
    return tuple(_lookup(payload, key) for key in keys)


def _lookup(payload: dict, dotted: str):
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _engine_ratios(payload: dict) -> dict[str, float]:
    return {
        f"columnar_speedup@{entry['rows']}rows": entry["speedup"]
        for entry in payload.get("results", [])
    }


def _engine_params(payload: dict) -> tuple:
    return (
        payload.get("numpy"),
        tuple(entry.get("rows") for entry in payload.get("results", [])),
    )


#: file name -> (workload-signature fn, ratio-extraction fn,
#:               parallelism-guarded ratio names fn)
SPECS: dict[str, tuple] = {
    "BENCH_engine.json": (_engine_params, _engine_ratios, lambda p: ()),
    "BENCH_pipeline.json": (
        lambda p: _params(p, "cases", "results.parallel.workers"),
        lambda p: {
            "parallel_speedup": _lookup(
                p, "results.parallel.speedup_vs_sequential"
            ),
            "warm_disk_hit_rate": _lookup(
                p, "results.warm_cache.disk_cache_hit_rate"
            ),
        },
        # The parallel speedup needs >= workers real cores to mean anything.
        lambda p: ("parallel_speedup",)
        if (os.cpu_count() or 1) < (_lookup(p, "results.parallel.workers") or 1)
        else (),
    ),
    "BENCH_model.json": (
        lambda p: _params(p, "numpy", "cases"),
        lambda p: {
            "candidate_scoring_speedup": _lookup(
                p, "candidate_scoring.speedup"
            ),
            "warm_cache_speedup": _lookup(p, "warm_cache_speedup"),
        },
        lambda p: (),
    ),
    "BENCH_matching.json": (
        lambda p: _params(
            p, "numpy", "matching.rows", "matching.documents",
            "matching.claims",
        ),
        lambda p: {"batched_matching_speedup": _lookup(p, "matching.speedup")},
        lambda p: (),
    ),
    "BENCH_service.json": (
        lambda p: _params(
            p, "numpy", "databases", "rows_per_database", "claims"
        ),
        lambda p: {
            "warm_pool_speedup": _lookup(p, "results.warm.speedup_vs_cold"),
            "incremental_speedup_vs_warm": _lookup(
                p, "results.incremental.speedup_vs_warm"
            ),
        },
        lambda p: (),
    ),
    "BENCH_sql.json": (
        lambda p: (
            _lookup(p, "numpy"),
            tuple(entry.get("rows") for entry in p.get("results", [])),
        ),
        lambda p: {
            # Pushdown must keep beating the row-wise tier at the
            # largest swept size.
            "sqlite_speedup_vs_row": (p.get("results") or [{}])[-1].get(
                "sqlite_speedup_vs_row"
            ),
            # Delivery contracts (1.0 = held): the out-of-core scenario
            # materialized nothing, and every corpus verdict matched.
            "out_of_core_pushdown": _lookup(p, "out_of_core.pushdown_ok"),
            "verdict_identity": _lookup(p, "verdict_identity.identical"),
        },
        lambda p: (),
    ),
    "BENCH_service_load.json": (
        # The gated ratios are delivery contracts (acked/submitted), not
        # timings, so the workload signature is the document/claim shape
        # only — runner speed cannot change what 1.0 means.
        lambda p: _params(
            p, "numpy", "load.documents", "load.claims_per_doc",
            "chaos.documents", "chaos.claims_per_doc",
        ),
        lambda p: {
            "load_completion_ratio": _lookup(p, "load.completion_ratio"),
            "chaos_completion_ratio": _lookup(p, "chaos.completion_ratio"),
        },
        lambda p: (),
    ),
}


def _load_fresh(name: str, fresh_dir: Path) -> dict | None:
    path = fresh_dir / name
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _load_baseline(
    name: str, ref: str, baseline_dir: Path | None
) -> dict | None:
    if baseline_dir is not None:
        path = baseline_dir / name
        return json.loads(path.read_text()) if path.exists() else None
    result = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return None
    return json.loads(result.stdout)


def check_file(
    name: str,
    tolerance: float,
    ref: str,
    baseline_dir: Path | None,
    fresh_dir: Path = REPO_ROOT,
) -> list[tuple[str, str, str, str, str]]:
    """Rows of (metric, baseline, fresh, floor, status) for one file."""
    params_of, ratios_of, guarded_of = SPECS[name]
    fresh = _load_fresh(name, fresh_dir)
    if fresh is None:
        return [("-", "-", "-", "-", "skipped: benchmark did not run")]
    baseline = _load_baseline(name, ref, baseline_dir)
    if baseline is None:
        return [("-", "-", "-", "-", "skipped: no committed baseline")]
    if fresh == baseline:
        # After checkout the committed file *is* the working-tree file;
        # every benchmark embeds wall-clock timings, so byte-identical
        # payloads mean the benchmark never rewrote it. Refuse to report
        # a vacuous self-comparison as "ok".
        return [
            (
                "-", "-", "-", "-",
                "skipped: fresh file identical to baseline "
                "(benchmark did not rewrite it)",
            )
        ]
    if params_of(fresh) != params_of(baseline):
        return [
            (
                "-", "-", "-", "-",
                "skipped: workload differs from baseline "
                f"({params_of(fresh)} != {params_of(baseline)})",
            )
        ]
    guarded = set(guarded_of(fresh))
    rows = []
    for metric, base_value in ratios_of(baseline).items():
        fresh_value = ratios_of(fresh).get(metric)
        if base_value is None or fresh_value is None:
            rows.append((metric, "-", "-", "-", "skipped: metric missing"))
            continue
        if metric in guarded:
            rows.append(
                (
                    metric,
                    f"{base_value:.2f}",
                    f"{fresh_value:.2f}",
                    "-",
                    f"skipped: needs more CPUs than {os.cpu_count() or 1}",
                )
            )
            continue
        floor = tolerance * base_value
        status = "ok" if fresh_value >= floor else "REGRESSED"
        rows.append(
            (
                metric,
                f"{base_value:.2f}",
                f"{fresh_value:.2f}",
                f"{floor:.2f}",
                status,
            )
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when fresh BENCH_*.json headline ratios regress "
        "vs the committed baselines"
    )
    parser.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help=f"benchmark files to gate (default: all of {sorted(SPECS)})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fresh ratio must be >= tolerance * baseline "
        f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref holding the committed baselines (default HEAD)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        help="read baselines from a directory instead of git",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the freshly produced BENCH files "
        "(default: the repo root)",
    )
    args = parser.parse_args(argv)
    if not (0.0 < args.tolerance <= 1.0):
        parser.error(f"tolerance must be in (0, 1], got {args.tolerance}")
    unknown = [name for name in args.files if name not in SPECS]
    if unknown:
        parser.error(f"unknown benchmark files {unknown}; known: {sorted(SPECS)}")

    files = args.files or sorted(SPECS)
    regressed = False
    print(f"benchmark regression gate (tolerance {args.tolerance:.2f})")
    for name in files:
        print(f"\n{name}")
        for metric, base, fresh, floor, status in check_file(
            name, args.tolerance, args.baseline_ref, args.baseline_dir,
            args.fresh_dir,
        ):
            print(
                f"  {metric:<32} baseline={base:<8} fresh={fresh:<8} "
                f"floor={floor:<8} {status}"
            )
            regressed = regressed or status == "REGRESSED"
    if regressed:
        print("\nFAIL: at least one headline ratio regressed", file=sys.stderr)
        return 1
    print("\nall headline ratios within tolerance (or cleanly skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
