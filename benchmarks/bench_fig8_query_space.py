"""Figure 8: number of possible query candidates per data set.

The paper shows 10^4..10^12 candidates across test cases (the Stack
Overflow survey with 154 columns exceeds a trillion). The wide
developer-survey theme reproduces the heavy tail.
"""

from __future__ import annotations

import math

from repro.fragments import extract_fragments
from repro.harness.reporting import format_series


def test_fig8_query_space(benchmark, corpus, capsys):
    sizes = []
    catalog = None
    for case in corpus.cases:
        catalog = extract_fragments(case.database)
        sizes.append(
            (case.case_id, catalog.candidate_space_size(max_predicates=3))
        )
    sizes.sort(key=lambda pair: pair[1])

    benchmark(lambda: catalog.candidate_space_size(max_predicates=3))

    series = {
        "log10(#queries) per case": [
            (case_id, round(math.log10(max(size, 1)), 1))
            for case_id, size in sizes
        ]
    }
    with capsys.disabled():
        print(
            "\n"
            + format_series(
                "Figure 8: possible Simple Aggregate Queries per data set",
                series,
            )
        )
        print(
            f"  min={sizes[0][1]:.2e}  max={sizes[-1][1]:.2e} "
            "(paper: ~10^4 .. >10^12)"
        )

    # Shape: several orders of magnitude spread; wide survey tables are
    # the heavy tail (paper: 10^4 .. >10^12 over real data sets).
    assert sizes[-1][1] > 1e9
    assert sizes[-1][1] / max(sizes[0][1], 1) > 1e5
