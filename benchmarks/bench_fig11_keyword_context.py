"""Figure 11: top-k coverage as a function of keyword-context sources.

Paper: each added source (previous sentence, paragraph start, synonyms,
headlines) improves coverage, most visibly at top-1 (~55 -> ~58.4).
"""

from __future__ import annotations

from repro.harness.ablations import keyword_context_ladder
from repro.harness.reporting import format_series


def test_fig11_keyword_context(benchmark, sweep_cache, capsys):
    series = {}
    top1 = []
    for label, config in keyword_context_ladder():
        run = sweep_cache(f"ctx:{label}", config)
        metrics = run.metrics
        series[label] = [
            (k, round(metrics.top_k_coverage(k), 1)) for k in (1, 5, 10)
        ]
        top1.append(metrics.top_k_coverage(1))

    run = sweep_cache("ctx:Claim sentence", keyword_context_ladder()[0][1])
    benchmark(lambda: run.metrics.top_k_coverage(1))

    with capsys.disabled():
        print(
            "\n"
            + format_series(
                "Figure 11: top-k coverage vs keyword context "
                "(sweep subset; paper top-1: ~55 -> 58.4)",
                series,
            )
        )

    # Shape: full context beats the claim-sentence-only variant.
    assert top1[-1] > top1[0]
