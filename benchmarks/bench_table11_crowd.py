"""Table 11: Amazon Mechanical Turk crowd study.

Paper: document scope — AggChecker 56/53, Google Sheet 0/0;
paragraph scope — AggChecker 86/96, Google Sheet 42/58 F1.
"""

from __future__ import annotations

from repro.harness.reporting import format_table
from repro.harness.users import run_crowd_study


def test_table11_crowd(benchmark, run_full, capsys):
    rows = []
    results = {}
    for scope in ("document", "paragraph"):
        outcome = run_crowd_study(run_full.results, scope=scope)
        for tool, label in (
            ("aggchecker", "AggChecker"),
            ("spreadsheet", "G-Sheet"),
        ):
            recall, precision, f1 = outcome.recall_precision(tool)
            results[(scope, tool)] = (recall, precision, f1)
            rows.append(
                [
                    label,
                    scope,
                    f"{recall:.0%}",
                    f"{precision:.0%}",
                    f"{f1:.0%}",
                ]
            )
    rows.append(["paper: AggChecker", "document", "56%", "53%", "54%"])
    rows.append(["paper: G-Sheet", "document", "0%", "0%", "0%"])
    rows.append(["paper: AggChecker", "paragraph", "86%", "96%", "91%"])
    rows.append(["paper: G-Sheet", "paragraph", "42%", "95%", "58%"])

    benchmark(lambda: run_crowd_study(run_full.results, scope="paragraph"))

    table = format_table(
        "Table 11: Amazon Mechanical Turk results",
        ["Tool", "Scope", "Recall", "Precision", "F1"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    # Shape: AggChecker dominates spreadsheets in both scopes; the
    # spreadsheet only becomes usable at paragraph scope.
    for scope in ("document", "paragraph"):
        assert results[(scope, "aggchecker")][2] > results[(scope, "spreadsheet")][2]
    assert (
        results[("paragraph", "spreadsheet")][0]
        > results[("document", "spreadsheet")][0]
    )
