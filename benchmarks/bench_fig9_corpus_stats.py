"""Figure 9: corpus statistics (Appendix B).

(a) claims per article and erroneous share: 392 claims over 53 articles,
    12% erroneous, 17/53 articles with at least one error;
(b) top-N query-characteristic coverage: top-3 covers ~90.8% on average;
(c) predicate-count breakdown: 17% zero / 61% one / 23% two.
"""

from __future__ import annotations

from repro.harness.reporting import format_series, format_table


def test_fig9_corpus_stats(benchmark, corpus, capsys):
    histogram = benchmark(corpus.predicate_histogram)

    per_case = corpus.claims_per_case()
    total = corpus.total_claims
    shares = {
        count: 100.0 * value / total for count, value in histogram.items()
    }
    coverage_series = {
        key: [
            (n, round(corpus.characteristic_coverage(n)[key], 1))
            for n in (1, 2, 3, 5, 10)
        ]
        for key in ("function", "column", "predicates")
    }

    rows = [
        ["articles", len(corpus), 53],
        ["claims", total, 392],
        ["erroneous claims", corpus.erroneous_claims, "47 (12%)"],
        ["error rate", f"{corpus.error_rate:.1%}", "12%"],
        ["articles with errors", corpus.cases_with_errors, 17],
        ["claims/article (min-max)", f"{min(per_case)}-{max(per_case)}", "~5-30"],
        ["% zero predicates", f"{shares.get(0, 0):.0f}%", "17%"],
        ["% one predicate", f"{shares.get(1, 0):.0f}%", "61%"],
        ["% two predicates", f"{shares.get(2, 0):.0f}%", "23%"],
    ]
    with capsys.disabled():
        print(
            "\n"
            + format_table(
                "Figure 9(a)/(c): corpus statistics (measured / paper)",
                ["Statistic", "Measured", "Paper"],
                rows,
            )
        )
        print(
            format_series(
                "Figure 9(b): % claims covered by top-N characteristics",
                coverage_series,
            )
        )

    # Shape assertions from Appendix B.
    assert 300 <= total <= 500
    assert 0.08 <= corpus.error_rate <= 0.2
    coverage3 = corpus.characteristic_coverage(3)
    assert sum(coverage3.values()) / 3 > 80.0  # ~90.8% in the paper
    assert shares.get(1, 0) > shares.get(2, 0) > 0
