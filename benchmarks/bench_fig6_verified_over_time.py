"""Figure 6: correctly verified claims as a function of time, per article.

The paper plots six articles, AggChecker vs SQL; the AggChecker curve
rises much faster in every panel.
"""

from __future__ import annotations

from repro.harness.reporting import format_series
from repro.harness.users import UserSimulator, default_users


def test_fig6_verified_over_time(benchmark, study, capsys):
    checkpoints = (60, 120, 180, 300, 600, 1200)
    output = {}
    articles = sorted({s.case_id for s in study.sessions})
    final = {}
    for article in articles:
        for tool in ("aggchecker", "sql"):
            sessions = [
                s
                for s in study.sessions
                if s.case_id == article and s.tool == tool
            ]
            if not sessions:
                continue
            series = []
            for t in checkpoints:
                if t > sessions[0].time_limit:
                    break
                mean = sum(s.verified_by(t) for s in sessions) / len(sessions)
                series.append((t, round(mean, 2)))
            output[f"{article}/{tool}"] = series
            final[(article, tool)] = series[-1][1] if series else 0.0

    benchmark(lambda: [s.verified_by(300) for s in study.sessions])

    with capsys.disabled():
        print(
            "\n"
            + format_series(
                "Figure 6: avg correctly verified claims over time "
                "(AggChecker vs SQL)",
                output,
            )
        )

    # Shape: by the time limit, AggChecker leads on every article.
    for article in articles:
        agg = final.get((article, "aggchecker"))
        sql = final.get((article, "sql"))
        if agg is not None and sql is not None:
            assert agg >= sql
