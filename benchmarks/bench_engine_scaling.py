"""Engine scaling: cube execution over synthetic relations, both backends.

Sweeps dictionary-encoded (columnar) vs tuple-at-a-time (row-wise) cube
execution across relation sizes and writes ``BENCH_engine.json`` (rows/sec
per backend, columnar speedup) so the performance trajectory is tracked
from this PR onward. The timed unit is one cube pass over a pre-materialized
relation — the operation the merged engine repeats for every batch — so the
numbers isolate the execution kernel from join materialization.

Row counts come from ``BENCH_ENGINE_SIZES`` (comma separated; default
``1000,10000,100000``) so CI can smoke-run a small sweep.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.db import (
    AggregateFunction,
    AggregateSpec,
    Column,
    ColumnRef,
    ColumnType,
    CubeQuery,
    Database,
    ExecutionBackend,
    STAR,
    Table,
    execute_cube,
)
from repro.db.columnar import numpy_available
from repro.db.joins import JoinGraph
from repro.harness.reporting import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engine.json"

TEAMS = [f"team{i:02d}" for i in range(24)]
STATUSES = ["active", "suspended", "retired", "injured"]

CATEGORY = ColumnRef("events", "team")
STATUS = ColumnRef("events", "status")
SCORE = ColumnRef("events", "score")

SPECS = (
    AggregateSpec(AggregateFunction.COUNT, STAR),
    AggregateSpec(AggregateFunction.COUNT, SCORE),
    AggregateSpec(AggregateFunction.SUM, SCORE),
    AggregateSpec(AggregateFunction.AVG, SCORE),
    AggregateSpec(AggregateFunction.MIN, SCORE),
    AggregateSpec(AggregateFunction.MAX, SCORE),
    AggregateSpec(AggregateFunction.COUNT_DISTINCT, STATUS),
)


def _sizes() -> list[int]:
    raw = os.environ.get("BENCH_ENGINE_SIZES", "1000,10000,100000")
    return [int(part) for part in raw.split(",") if part.strip()]


def synthetic_database(n_rows: int, seed: int = 7) -> Database:
    """One wide fact table with NULLs and messy numeric strings mixed in."""
    rng = random.Random(seed)
    rows = []
    for _ in range(n_rows):
        team = rng.choice(TEAMS) if rng.random() > 0.05 else None
        status = rng.choice(STATUSES)
        roll = rng.random()
        if roll < 0.05:
            score = None
        elif roll < 0.08:
            score = "n/a"
        elif roll < 0.12:
            score = f"{rng.randint(1, 9)},{rng.randint(100, 999)}"
        else:
            score = rng.randint(0, 10_000)
        rows.append((team, status, score))
    table = Table(
        "events",
        [
            Column("team"),
            Column("status"),
            Column("score", ColumnType.NUMERIC),
        ],
        rows,
    )
    return Database("synthetic", [table])


def scaling_cube() -> CubeQuery:
    dims = tuple(sorted([CATEGORY, STATUS]))
    literal_map = {
        CATEGORY: frozenset(TEAMS[:8]),
        STATUS: frozenset(STATUSES[:2]),
    }
    return CubeQuery(
        tables=frozenset({"events"}),
        dimensions=dims,
        literals=tuple((dim, literal_map[dim]) for dim in dims),
        aggregates=SPECS,
    )


def time_backend(database: Database, backend: ExecutionBackend, repeats: int = 3) -> float:
    """Best-of-N wall clock for one cube pass on a pre-materialized relation."""
    graph = JoinGraph(database, backend=backend)
    graph.relation({"events"})  # materialize outside the timed region
    cube = scaling_cube()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        execute_cube(database, cube, graph)
        best = min(best, time.perf_counter() - started)
    return best


def test_engine_scaling(capsys):
    sizes = _sizes()
    results = []
    rows_out = []
    for n_rows in sizes:
        database = synthetic_database(n_rows)
        row_seconds = time_backend(database, ExecutionBackend.ROW)
        col_seconds = time_backend(database, ExecutionBackend.COLUMNAR)
        speedup = row_seconds / max(col_seconds, 1e-9)
        results.append(
            {
                "rows": n_rows,
                "row_seconds": round(row_seconds, 6),
                "columnar_seconds": round(col_seconds, 6),
                "row_rows_per_sec": round(n_rows / max(row_seconds, 1e-9)),
                "columnar_rows_per_sec": round(n_rows / max(col_seconds, 1e-9)),
                "speedup": round(speedup, 2),
            }
        )
        rows_out.append(
            [
                f"{n_rows:,}",
                f"{row_seconds * 1e3:.1f}ms",
                f"{col_seconds * 1e3:.1f}ms",
                f"{n_rows / max(col_seconds, 1e-9):,.0f}",
                f"x{speedup:.1f}",
            ]
        )
    payload = {
        "benchmark": "cube execution over synthetic relations",
        "numpy": numpy_available(),
        "aggregates": [str(spec) for spec in SPECS],
        "results": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    table = format_table(
        "Engine scaling: cube execution (row-wise vs columnar)",
        ["Rows", "Row-wise", "Columnar", "Columnar rows/s", "Speedup"],
        rows_out,
    )
    with capsys.disabled():
        print("\n" + table)
        print(f"written: {OUTPUT}")

    # Acceptance: at the 100k-row point the vectorized backend must beat the
    # row-wise backend by at least 5x (skipped for smoke-sized sweeps).
    largest = results[-1]
    if numpy_available() and largest["rows"] >= 100_000:
        assert largest["speedup"] >= 5.0, largest
