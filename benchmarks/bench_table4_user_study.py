"""Table 4: on-site user study — recall/precision/F1 per tool.

Paper: AggChecker+User 100.0 / 91.4 / 95.5; SQL+User 30.0 / 56.7 / 39.2.
"""

from __future__ import annotations

from repro.harness.reporting import format_table
from repro.harness.users import UserSimulator, default_users


def test_table4_user_study(benchmark, study, run_full, capsys):
    rows = []
    for tool, label in (("aggchecker", "AggChecker + User"), ("sql", "SQL + User")):
        recall, precision, f1 = study.recall_precision(tool)
        rows.append(
            [label, f"{recall:.1%}", f"{precision:.1%}", f"{f1:.1%}"]
        )
    rows.append(["paper: AggChecker + User", "100.0%", "91.4%", "95.5%"])
    rows.append(["paper: SQL + User", "30.0%", "56.7%", "39.2%"])

    simulator = UserSimulator(seed=7)
    user = default_users(1)[0]
    benchmark(lambda: simulator.sql_session(run_full.results[0], user, 1200.0))

    table = format_table(
        "Table 4: results of on-site user study",
        ["Tool", "Recall", "Precision", "F1 Score"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    agg = study.recall_precision("aggchecker")
    sql = study.recall_precision("sql")
    # Shape: AggChecker users find more errors and win decisively on F1.
    assert agg[0] >= sql[0]
    assert agg[2] > sql[2]
