"""Setup script.

The execution environment has no network access and no ``wheel`` package,
so editable installs must use the legacy ``setup.py develop`` path; keeping
the metadata here (and no ``[build-system]`` table in pyproject.toml) makes
``pip install -e .`` work offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "AggChecker reproduction: verifying text summaries of relational "
        "data sets (SIGMOD 2019)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
