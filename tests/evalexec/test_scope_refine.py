"""Unit tests for PickScope and RefineByEval."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")  # the model layer has no pure-Python fallback

from repro.db import Column, ColumnType, Database, QueryEngine, Table
from repro.evalexec import ScopeConfig, pick_scope, refine_by_eval
from repro.fragments import FragmentIndex, extract_fragments
from repro.matching import keyword_match
from repro.model import build_candidates, compute_distribution
from repro.text import Document, detect_claims

from tests.conftest import NFL_ROWS


@pytest.fixture(scope="module")
def setup():
    table = Table(
        "nflsuspensions",
        [
            Column("Name"),
            Column("Team"),
            Column("Games"),
            Column("Category"),
            Column("Year", ColumnType.NUMERIC),
        ],
        NFL_ROWS,
    )
    database = Database("nfl", [table])
    document = Document.from_plain_text(
        "bans",
        [
            "There were 4 suspensions for gambling or abuse in the data.",
            "The data lists 9 suspensions overall.",
        ],
    )
    claims = detect_claims(document)
    index = FragmentIndex(extract_fragments(database))
    scores = keyword_match(claims, index)
    spaces = {c: build_candidates(c, scores[c]) for c in claims}
    return database, claims, spaces


class TestPickScope:
    def test_full_scope_by_default(self, setup):
        _, claims, spaces = setup
        space = spaces[claims[0]]
        scoped = pick_scope(space, None, ScopeConfig())
        assert len(scoped) == len(space)

    def test_budget_limits(self, setup):
        _, claims, spaces = setup
        space = spaces[claims[0]]
        scoped = pick_scope(space, None, ScopeConfig(max_evaluations_per_claim=10))
        assert len(scoped) == 10

    def test_budget_prefers_likely_candidates(self, setup):
        _, claims, spaces = setup
        space = spaces[claims[0]]
        distribution = compute_distribution(space)
        scoped = pick_scope(
            space,
            distribution.log_scores,
            ScopeConfig(max_evaluations_per_claim=5),
        )
        top = distribution.top_queries(5)
        assert set(scoped) == {query for query, _ in top}

    def test_budget_larger_than_space(self, setup):
        _, claims, spaces = setup
        space = spaces[claims[0]]
        scoped = pick_scope(
            space, None, ScopeConfig(max_evaluations_per_claim=10**9)
        )
        assert len(scoped) == len(space)


class TestRefineByEval:
    def test_outcomes_cover_all_claims(self, setup):
        database, claims, spaces = setup
        engine = QueryEngine(database)
        outcomes = refine_by_eval(spaces, None, engine)
        assert set(outcomes) == set(spaces)
        for claim, outcome in outcomes.items():
            assert outcome.evaluated.all()

    def test_known_results_avoid_reevaluation(self, setup):
        database, claims, spaces = setup
        engine = QueryEngine(database)
        known = {}
        refine_by_eval(spaces, None, engine, known_results=known)
        first_requested = engine.stats.queries_requested
        refine_by_eval(spaces, None, engine, known_results=known)
        assert engine.stats.queries_requested == first_requested

    def test_budget_restricts_evaluated(self, setup):
        database, claims, spaces = setup
        engine = QueryEngine(database)
        preliminary = {
            claim: compute_distribution(space) for claim, space in spaces.items()
        }
        outcomes = refine_by_eval(
            spaces,
            preliminary,
            engine,
            ScopeConfig(max_evaluations_per_claim=10),
        )
        for outcome in outcomes.values():
            assert int(outcome.evaluated.sum()) <= 10

    def test_matches_only_on_evaluated(self, setup):
        database, claims, spaces = setup
        engine = QueryEngine(database)
        preliminary = {
            claim: compute_distribution(space) for claim, space in spaces.items()
        }
        outcomes = refine_by_eval(
            spaces,
            preliminary,
            engine,
            ScopeConfig(max_evaluations_per_claim=10),
        )
        for outcome in outcomes.values():
            assert not np.any(outcome.matches & ~outcome.evaluated)

    def test_some_claim_matches_ground_result(self, setup):
        database, claims, spaces = setup
        engine = QueryEngine(database)
        outcomes = refine_by_eval(spaces, None, engine)
        # The '9 suspensions overall' claim matches Count(*) = 9.
        claim_nine = next(c for c in claims if c.claimed_value == 9)
        assert outcomes[claim_nine].matches.any()
