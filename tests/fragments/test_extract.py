"""Unit tests for fragment extraction and the catalog."""

from __future__ import annotations

import pytest

from repro.db import AggregateFunction, ColumnRef, STAR
from repro.fragments import ExtractionConfig, extract_fragments


@pytest.fixture()
def catalog(nfl_db):
    return extract_fragments(nfl_db)


class TestFunctions:
    def test_all_eight_functions(self, catalog):
        assert len(catalog.functions) == 8
        functions = {fragment.function for fragment in catalog.functions}
        assert AggregateFunction.CONDITIONAL_PROBABILITY in functions

    def test_function_keywords_fixed(self, catalog):
        count = next(
            f for f in catalog.functions if f.function is AggregateFunction.COUNT
        )
        assert "number" in count.keywords


class TestColumns:
    def test_star_fragment_single_table(self, catalog):
        stars = [f for f in catalog.columns if f.is_star]
        assert len(stars) == 1
        assert stars[0].column == STAR

    def test_star_fragment_multi_table(self, star_db):
        catalog = extract_fragments(star_db)
        stars = {f.column for f in catalog.columns if f.is_star}
        assert stars == {ColumnRef("players", "*"), ColumnRef("teams", "*")}

    def test_numeric_columns_only(self, catalog):
        names = {f.column.column for f in catalog.columns if not f.is_star}
        assert names == {"Year"}

    def test_column_keywords_include_table_words(self, catalog):
        year = next(f for f in catalog.columns if f.column.column == "Year")
        assert "year" in year.keywords
        assert "suspensions" in year.keywords  # from decomposed table name

    def test_column_keywords_include_synonyms(self, catalog):
        year = next(f for f in catalog.columns if f.column.column == "Year")
        assert "season" in year.keywords  # synonym of 'year'


class TestPredicates:
    def test_predicates_for_string_values(self, catalog):
        values = {
            f.predicate.value
            for f in catalog.predicates
            if f.column.column == "Games"
        }
        assert {"indef", "16", "2"} <= values

    def test_predicate_keywords_value_first(self, catalog):
        gambling = next(
            f for f in catalog.predicates if f.predicate.value == "gambling"
        )
        assert gambling.keywords[0] == "gambling"
        assert "category" in gambling.keywords

    def test_predicate_keywords_synonyms(self, catalog):
        gambling = next(
            f for f in catalog.predicates if f.predicate.value == "gambling"
        )
        assert "betting" in gambling.keywords

    def test_distinct_cap(self, nfl_db):
        config = ExtractionConfig(max_distinct_per_column=2)
        catalog = extract_fragments(nfl_db, config)
        # Name has 9 distinct values -> dropped entirely under cap 2.
        assert not any(f.column.column == "Name" for f in catalog.predicates)

    def test_numeric_predicates_toggle(self, nfl_db):
        with_numeric = extract_fragments(nfl_db)
        without = extract_fragments(
            nfl_db, ExtractionConfig(include_numeric_predicates=False)
        )
        year_with = [
            f for f in with_numeric.predicates if f.column.column == "Year"
        ]
        year_without = [
            f for f in without.predicates if f.column.column == "Year"
        ]
        assert year_with and not year_without


class TestDataDictionary:
    def test_description_words_added(self, nfl_db):
        catalog = extract_fragments(
            nfl_db,
            data_dictionary={"Games": "length of the suspension in matches"},
        )
        games_predicates = [
            f for f in catalog.predicates if f.column.column == "Games"
        ]
        assert all("matches" in f.keywords for f in games_predicates)


class TestCandidateSpace:
    def test_size_positive_and_large(self, catalog):
        size = catalog.candidate_space_size()
        # 8 functions x 2 columns x many predicate combinations.
        assert size > 1000

    def test_size_grows_with_predicate_budget(self, catalog):
        assert catalog.candidate_space_size(2) < catalog.candidate_space_size(3)

    def test_catalog_len(self, catalog):
        assert len(catalog) == (
            len(catalog.functions)
            + len(catalog.columns)
            + len(catalog.predicates)
        )
