"""Unit tests for fragment indexing and retrieval."""

from __future__ import annotations

import pytest

from repro.db import AggregateFunction
from repro.fragments import FragmentIndex, extract_fragments


@pytest.fixture()
def index(nfl_db):
    return FragmentIndex(extract_fragments(nfl_db))


class TestRetrieve:
    def test_gambling_keyword_finds_predicate(self, index):
        scores = index.retrieve({"gambling": 1.0})
        best = max(scores.predicates, key=scores.predicates.get)
        assert best.predicate.value == "gambling"

    def test_lifetime_ban_reaches_indef_via_synonyms(self, index):
        # 'lifetime' -> 'indefinite'/'permanent' are fragment-side synonyms
        # but the data value is the abbreviation 'indef', which no keyword
        # reaches: this is the paper's hard case (Example 5).
        scores = index.retrieve({"lifetime": 1.0, "bans": 1.0})
        values = {f.predicate.value for f in scores.predicates}
        # The retrieval may or may not surface 'indef'; the test pins the
        # weaker invariant that suspension-related fragments are returned.
        assert scores.predicates or values == set()

    def test_count_keywords_rank_count_function(self, index):
        scores = index.retrieve({"number": 1.0, "total": 0.5})
        best = max(scores.functions, key=scores.functions.get)
        assert best.function in (
            AggregateFunction.COUNT,
            AggregateFunction.COUNT_DISTINCT,
            AggregateFunction.SUM,
        )

    def test_average_keyword(self, index):
        scores = index.retrieve({"average": 1.0})
        best = max(scores.functions, key=scores.functions.get)
        assert best.function is AggregateFunction.AVG

    def test_predicate_hits_budget(self, index):
        few = index.retrieve({"suspensions": 1.0}, predicate_hits=3)
        many = index.retrieve({"suspensions": 1.0}, predicate_hits=30)
        assert len(few.predicates) <= 3
        assert len(many.predicates) >= len(few.predicates)

    def test_column_hits_budget(self, index):
        # At most `column_hits` retrieved columns plus the always-present
        # star fragment.
        scores = index.retrieve({"year": 1.0}, column_hits=1)
        non_star = [f for f in scores.columns if not f.is_star]
        assert len(non_star) <= 1
        assert any(f.is_star for f in scores.columns)

    def test_empty_keywords_keep_scaffolding(self, index):
        # All 8 functions and the '*' column stay in scope with zero scores
        # (Count(*) is the most common claim query); predicates need
        # keyword evidence.
        scores = index.retrieve({})
        assert len(scores.functions) == 8
        assert all(score == 0.0 for score in scores.functions.values())
        assert all(f.is_star for f in scores.columns)
        assert scores.predicates == {}

    def test_retrieved_scores_positive(self, index):
        scores = index.retrieve({"gambling": 1.0, "games": 0.5})
        assert all(score > 0 for score in scores.predicates.values())
        assert max(scores.functions.values()) >= 0
        assert len(scores.functions) == 8
