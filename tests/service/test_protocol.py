"""Unit tests for the service wire protocol (no pipeline, no NumPy)."""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import (
    CheckRequest,
    ProtocolError,
    claim_event,
    encode_event,
    error_event,
    parse_article,
)


class TestCheckRequestParsing:
    def test_minimal_inline_request(self):
        request = CheckRequest.from_json(
            {"tables": {"t": "a,b\n1,2\n"}, "article": "Four things."}
        )
        assert request.inline_tables == (("t", "a,b\n1,2\n"),)
        assert request.article == "Four things."
        assert request.incremental is True

    def test_csv_string_promoted_to_list(self):
        request = CheckRequest.from_json(
            {"csv": "data.csv", "article": "x"}
        )
        assert request.csv_paths == ("data.csv",)

    def test_body_must_be_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            CheckRequest.from_json(["not", "an", "object"])

    def test_needs_some_table_source(self):
        with pytest.raises(ProtocolError, match="'csv' paths, inline"):
            CheckRequest.from_json({"article": "x"})

    def test_exactly_one_article_source(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            CheckRequest.from_json({"csv": ["d.csv"]})
        with pytest.raises(ProtocolError, match="exactly one"):
            CheckRequest.from_json(
                {"csv": ["d.csv"], "article": "x", "article_path": "a.html"}
            )

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request fields"):
            CheckRequest.from_json(
                {"csv": ["d.csv"], "article": "x", "claims": ["huh"]}
            )

    def test_title_and_database_name_must_be_strings(self):
        for field in ("title", "database_name"):
            with pytest.raises(ProtocolError, match=field):
                CheckRequest.from_json(
                    {"csv": ["d.csv"], "article": "x", field: {"a": 1}}
                )

    def test_incremental_must_be_boolean(self):
        with pytest.raises(ProtocolError, match="'incremental'"):
            CheckRequest.from_json(
                {"csv": ["d.csv"], "article": "x", "incremental": "yes"}
            )

    def test_tables_must_map_names_to_text(self):
        with pytest.raises(ProtocolError, match="'tables'"):
            CheckRequest.from_json({"tables": {"t": 3}, "article": "x"})

    def test_bad_csv_type(self):
        with pytest.raises(ProtocolError, match="'csv'"):
            CheckRequest.from_json({"csv": [1], "article": "x"})

    def test_dataclass_field_aliases_rejected(self):
        # Only wire names are accepted: aliases would be silently ignored.
        with pytest.raises(ProtocolError, match="unknown request fields"):
            CheckRequest.from_json({"csv_paths": ["d.csv"], "article": "x"})
        with pytest.raises(ProtocolError, match="unknown request fields"):
            CheckRequest.from_json(
                {"inline_tables": {"t": "a\n1\n"}, "article": "x"}
            )

    def test_database_fingerprint_reference(self):
        request = CheckRequest.from_json(
            {"database": "abc123", "article": "Four things."}
        )
        assert request.database == "abc123"
        assert request.csv_paths == ()

    def test_database_reference_excludes_data_sources(self):
        for extra in (
            {"csv": ["d.csv"]},
            {"tables": {"t": "a\n1\n"}},
            {"data_dict": "column,description\n"},
        ):
            with pytest.raises(ProtocolError, match="excludes"):
                CheckRequest.from_json(
                    {"database": "abc123", "article": "x", **extra}
                )

    def test_inline_database_loads(self):
        request = CheckRequest.from_json(
            {
                "tables": {"nums": "name,score\na,1\nb,2\n"},
                "article": "Two rows.",
                "database_name": "mydb",
            }
        )
        database = request.load_database()
        assert database.name == "mydb"
        assert [t.name for t in database.tables] == ["nums"]
        assert len(database.tables[0].rows) == 2

    def test_inline_data_dictionary(self):
        request = CheckRequest.from_json(
            {
                "tables": {"t": "a,b\n1,2\n"},
                "article": "x",
                "data_dict": "column,description\na,alpha level\n",
            }
        )
        assert request.load_dictionary() == {"a": "alpha level"}


class TestArticleParsing:
    def test_html_sniffing(self):
        document = parse_article(
            "<title>T</title><p>Four things happened.</p>", "ignored"
        )
        assert document.title == "T"

    def test_plain_text_uses_title(self):
        document = parse_article(
            "Four things happened.\n\nThen five more.", "draft"
        )
        assert document.title == "draft"
        assert len(document.paragraphs()) == 2


class TestFraming:
    def test_encode_event_is_one_terminated_line(self):
        frame = encode_event(claim_event(3, {"status": "verified"}, True))
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1
        decoded = json.loads(frame)
        assert decoded == {
            "event": "claim",
            "index": 3,
            "cached": True,
            "claim": {"status": "verified"},
        }

    def test_error_event_shape(self):
        assert json.loads(encode_event(error_event("boom"))) == {
            "event": "error",
            "error": "boom",
        }

    def test_frames_never_contain_raw_newlines(self):
        frame = encode_event({"event": "claim", "text": "line\nbreak"})
        assert frame.count(b"\n") == 1  # the terminator only (escaped inside)
