"""Service resilience suite: poison claims, deadlines, backpressure.

A live loopback server under injected faults. The contracts: one bad
claim costs exactly one error event (never the document), a request
deadline degrades verdicts instead of pinning a slot, a saturated server
sheds load with 429 + Retry-After while ``/health`` keeps answering and
reports ``degraded``, clients hanging up mid-stream are counted rather
than raised, and graceful shutdown drains a stream that contains an
error event — flushing it, closing cleanly, and releasing pool locks.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultSpec, active
from repro.service import create_server

from tests.service.test_server import (
    NFL_ARTICLE,
    NFL_CSV,
    claims_of,
    get_json,
    post_check,
)

pytestmark = pytest.mark.faults


@pytest.fixture()
def data_files(tmp_path):
    nfl = tmp_path / "nflsuspensions.csv"
    nfl.write_text(NFL_CSV)
    article = tmp_path / "nfl_article.html"
    article.write_text(NFL_ARTICLE)
    return {"nfl": nfl, "nfl_article": article}


def serve(**kwargs):
    instance = create_server(port=0, **kwargs)
    thread = threading.Thread(target=instance.serve_forever)
    thread.start()
    return instance, thread


def stop(instance, thread):
    instance.shutdown_gracefully()
    thread.join(timeout=10)
    assert not thread.is_alive()


def wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestPoisonClaim:
    def test_one_bad_claim_costs_one_error_event(self, data_files):
        instance, thread = serve()
        try:
            payload = {
                "csv": [str(data_files["nfl"])],
                "article_path": str(data_files["nfl_article"]),
            }
            # 'four' poisons its claim on every attempt (times=0): the
            # joint batch dies, the per-claim fallback isolates it.
            with active(
                FaultSpec("checker.claim", "raise", match="four", times=0)
            ):
                events = post_check(instance.url, payload)

            kinds = [event["event"] for event in events]
            assert kinds[0] == "start"
            assert kinds[-1] == "summary"
            errors = [e for e in events if e["event"] == "error"]
            assert len(errors) == 1
            assert "index" in errors[0]
            assert "injected fault" in errors[0]["error"]
            # Every other claim still got a real verdict.
            claim_events = [e for e in events if e["event"] == "claim"]
            assert len(claim_events) == events[0]["claims"] - 1
            summary = events[-1]
            assert summary["errors"] == 1
            assert summary["claims"] == len(claim_events) + 1

            stats = get_json(instance.url + "/stats")
            assert stats["claim_errors"] == 1
            assert stats["request_errors"] == 0

            # The healthy claims' verdicts agree with an undegraded run
            # of the same document. Probabilities are excluded: claims
            # are weakly coupled through learned document priors, so a
            # one-at-a-time fallback legitimately shifts them a little —
            # statuses and top queries must not move.
            clean = post_check(
                instance.url, dict(payload, incremental=False)
            )
            poisoned_by_index = {
                e["index"]: e["claim"] for e in claim_events
            }
            clean_by_index = {
                e["index"]: e["claim"]
                for e in clean
                if e["event"] == "claim"
            }
            for index, claim in poisoned_by_index.items():
                for field in ("text", "status", "top_query", "top_result"):
                    assert claim[field] == clean_by_index[index][field]
        finally:
            stop(instance, thread)


class TestRequestDeadline:
    def test_deadline_degrades_and_stream_completes(self, data_files):
        instance, thread = serve(request_timeout=1e-9)
        try:
            payload = {
                "csv": [str(data_files["nfl"])],
                "article_path": str(data_files["nfl_article"]),
            }
            events = post_check(instance.url, payload)
            assert events[-1]["event"] == "summary"
            claims = claims_of(events)
            assert claims  # stream delivered every claim
            for claim in claims:
                assert claim["status"] == "unverifiable"
                assert claim["degraded"] == "timeout"
            assert events[-1]["flagged"] == len(claims)
            assert events[-1]["errors"] == 0

            # Degraded verdicts are never memoized: a resubmission
            # re-evaluates (no cached events) and the skip is counted.
            again = post_check(instance.url, payload)
            assert all(
                not e["cached"] for e in again if e["event"] == "claim"
            )
            stats = get_json(instance.url + "/stats")
            assert stats["incremental"]["skipped"] >= len(claims)
            assert stats["incremental"]["stores"] == 0
        finally:
            stop(instance, thread)


class TestBackpressure:
    def test_saturated_server_sheds_with_429(self, data_files):
        instance, thread = serve(max_inflight=1)
        try:
            payload = {
                "csv": [str(data_files["nfl"])],
                "article_path": str(data_files["nfl_article"]),
            }
            results: list[list[dict]] = []
            errors: list[BaseException] = []

            def slow_client() -> None:
                try:
                    results.append(post_check(instance.url, payload))
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            # The one slot is held for >1s by an injected stall.
            with active(
                FaultSpec("checker.stage", "sleep", match="match",
                          seconds=1.5, times=1)
            ):
                holder = threading.Thread(target=slow_client)
                holder.start()
                try:
                    assert wait_for(
                        lambda: get_json(instance.url + "/health")["inflight"]
                        == 1
                    )
                    # /health answers while saturated, and says so.
                    health = get_json(instance.url + "/health")
                    assert health["status"] == "degraded"

                    body = json.dumps(payload).encode()
                    request = urllib.request.Request(
                        instance.url + "/check", data=body, method="POST"
                    )
                    with pytest.raises(urllib.error.HTTPError) as excinfo:
                        urllib.request.urlopen(request)
                    assert excinfo.value.code == 429
                    assert excinfo.value.headers["Retry-After"] == "1"
                finally:
                    holder.join(timeout=60)
            assert not errors
            assert results[0][-1]["event"] == "summary"

            health = get_json(instance.url + "/health")
            assert health["status"] == "ok"
            assert health["inflight"] == 0
            assert health["rejected_requests"] == 1
        finally:
            stop(instance, thread)


class TestDroppedStream:
    def test_client_hangup_is_counted_not_raised(self, data_files):
        instance, thread = serve()
        try:
            body = json.dumps(
                {
                    "csv": [str(data_files["nfl"])],
                    "article_path": str(data_files["nfl_article"]),
                }
            ).encode()
            host, port = instance.server_address[:2]
            # Stall the batch so the server is still mid-stream when the
            # client vanishes; SO_LINGER 0 turns close() into a RST, so
            # the server's next write genuinely fails instead of
            # buffering.
            with active(
                FaultSpec("checker.stage", "sleep", match="inference",
                          seconds=0.5, times=1)
            ):
                with socket.create_connection((host, port), timeout=30) as sock:
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                    sock.sendall(
                        b"POST /check HTTP/1.1\r\nHost: localhost\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: " + str(len(body)).encode()
                        + b"\r\nConnection: close\r\n\r\n" + body
                    )
                    sock.recv(1)  # the stream has started
                # RST sent; the server thread is still verifying.
                assert wait_for(
                    lambda: get_json(instance.url + "/stats")[
                        "dropped_streams"
                    ]
                    >= 1
                )
            stats = get_json(instance.url + "/stats")
            assert stats["dropped_streams"] == 1
            # A hangup is not a server error.
            assert stats["request_errors"] == 0
        finally:
            stop(instance, thread)


class TestShutdownDrainsErrorStream:
    def test_graceful_shutdown_flushes_error_event(self, data_files):
        instance, thread = serve()
        results: list[list[dict]] = []
        errors: list[BaseException] = []
        payload = {
            "csv": [str(data_files["nfl"])],
            "article_path": str(data_files["nfl_article"]),
        }

        def client() -> None:
            try:
                results.append(post_check(instance.url, payload))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        with active(
            FaultSpec("checker.claim", "raise", match="four", times=0),
            FaultSpec("checker.stage", "sleep", match="match",
                      seconds=0.2, times=1),
        ):
            request_thread = threading.Thread(target=client)
            request_thread.start()
            assert wait_for(
                lambda: get_json(instance.url + "/health")["inflight"] == 1
            )
            # Shut down while the erroring stream is in flight: must
            # block until the stream (error event included) is flushed.
            instance.shutdown_gracefully()
            thread.join(timeout=10)
            request_thread.join(timeout=30)

        assert not errors
        assert len(results) == 1
        events = results[0]
        assert events[0]["event"] == "start"
        assert events[-1]["event"] == "summary"
        assert [e for e in events if e["event"] == "error"]
        assert events[-1]["errors"] == 1

        # The pool's per-database locks were released on the way out:
        # nothing is left holding a checker.
        for entry in instance.service.pool._entries.values():
            assert entry.lock.acquire(timeout=1)
            entry.lock.release()
