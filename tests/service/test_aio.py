"""End-to-end tests for the queue-backed asyncio service front end.

The acceptance contracts of the durable-queue PR, against a live
loopback server: queued-path verdicts are bit-identical to the one-shot
``check`` CLI, per-client rate limiting and queue-depth backpressure
shed with ``429`` + ``Retry-After`` (and the stdlib client honors it),
poison claims land in the dead-letter quarantine without poisoning the
stream, an open circuit breaker degrades verdicts through the deadline
ladder instead of collapsing the queue, a graceful drain journals
pending jobs, a restarted service resumes and completes them, and a
``kill -9`` mid-load loses nothing. Skipped on the no-NumPy leg (full
pipeline) via tests/conftest.py.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.faults import ENV_FAULTS, ENV_STATE, FaultSpec, active, encode_specs
from repro.harness.parallel import RetryPolicy
from repro.service import CheckRequest, ServiceClient
from repro.service.aio import QueueService, create_async_server

from tests.service.test_server import (
    NFL_ARTICLE,
    NFL_CSV,
    SALES_ARTICLE,
    SALES_CSV,
    claims_of,
    cli_claims,
    get_json,
    post_check,
)

FAST_RETRY = RetryPolicy(
    max_attempts=2, backoff_base=0.01, backoff_cap=0.05
)


@pytest.fixture()
def data_files(tmp_path):
    nfl = tmp_path / "nflsuspensions.csv"
    nfl.write_text(NFL_CSV)
    sales = tmp_path / "sales.csv"
    sales.write_text(SALES_CSV)
    nfl_article = tmp_path / "nfl_article.html"
    nfl_article.write_text(NFL_ARTICLE)
    sales_article = tmp_path / "sales_article.txt"
    sales_article.write_text(SALES_ARTICLE)
    return {
        "nfl": nfl,
        "sales": sales,
        "nfl_article": nfl_article,
        "sales_article": sales_article,
    }


def serve(**kwargs):
    kwargs.setdefault("visibility_timeout", 5.0)
    server = create_async_server(port=0, **kwargs)
    server.start_in_thread()
    return server


def wait_for(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestBitIdentity:
    def test_queued_verdicts_match_the_one_shot_cli(
        self, data_files, capsys
    ):
        server = serve(workers=2)
        try:
            for csv, article in (
                ("nfl", "nfl_article"), ("sales", "sales_article"),
            ):
                events = post_check(
                    server.url,
                    {
                        "csv": str(data_files[csv]),
                        "article_path": str(data_files[article]),
                    },
                )
                oracle = cli_claims(
                    capsys, data_files[csv], data_files[article]
                )
                assert claims_of(events) == oracle
                summary = events[-1]
                assert summary["event"] == "summary"
                assert summary["errors"] == 0
                assert summary["evaluated_claims"] == summary["claims"]
        finally:
            server.shutdown_gracefully()

    def test_resubmission_is_served_from_the_incremental_tier(
        self, data_files
    ):
        server = serve(workers=1)
        try:
            payload = {
                "csv": str(data_files["nfl"]),
                "article_path": str(data_files["nfl_article"]),
            }
            first = post_check(server.url, payload)
            second = post_check(server.url, payload)
            assert claims_of(first) == claims_of(second)
            assert all(
                e["cached"] for e in second if e["event"] == "claim"
            )
            assert second[-1]["cached_claims"] == second[-1]["claims"]
            assert server.service.queue.stats()["enqueued"] == len(
                claims_of(first)
            )
        finally:
            server.shutdown_gracefully()


class TestBackpressure:
    def test_rate_limited_client_gets_429_with_retry_after(
        self, data_files
    ):
        server = serve(workers=1, rate_limit=0.001, rate_burst=1.0)
        try:
            payload = {
                "csv": str(data_files["nfl"]),
                "article_path": str(data_files["nfl_article"]),
            }
            post_check(server.url, payload)  # spends alice's one token
            body = json.dumps(payload).encode()
            request = urllib.request.Request(
                server.url + "/check",
                data=body,
                headers={
                    "Content-Type": "application/json",
                    "X-Client-Id": "alice",
                },
            )
            # The first request came from the peer-address identity, so
            # alice still has her burst; spend it, then expect the shed.
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
                response.read()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    urllib.request.Request(
                        server.url + "/check",
                        data=body,
                        headers={
                            "Content-Type": "application/json",
                            "X-Client-Id": "alice",
                        },
                    )
                )
            assert excinfo.value.code == 429
            assert float(excinfo.value.headers["Retry-After"]) >= 1
            excinfo.value.close()
            # A different client id is not affected.
            with urllib.request.urlopen(
                urllib.request.Request(
                    server.url + "/check",
                    data=body,
                    headers={
                        "Content-Type": "application/json",
                        "X-Client-Id": "bob",
                    },
                )
            ) as response:
                assert response.status == 200
        finally:
            server.shutdown_gracefully()

    def test_service_client_honors_retry_after_with_jitter(
        self, data_files
    ):
        server = serve(workers=1, rate_limit=5.0, rate_burst=1.0)
        try:
            payload = {
                "csv": str(data_files["nfl"]),
                "article_path": str(data_files["nfl_article"]),
            }
            slept: list[float] = []

            def sleep(seconds: float) -> None:
                # Record the computed wait, but cap the real one so the
                # test stays fast; tokens refill at 5/s regardless.
                slept.append(seconds)
                time.sleep(min(seconds, 0.5))

            client = ServiceClient(
                server.url,
                client_id="carol",
                retry=RetryPolicy(max_attempts=4),
                sleep=sleep,
            )
            first = client.check(payload)
            second = client.check(payload)  # shed once, then retried
            assert claims_of(first) == claims_of(second)
            assert client.retries >= 1
            # Each wait = server Retry-After floor + client jitter.
            assert all(delay > 0 for delay in slept)
        finally:
            server.shutdown_gracefully()

    def test_full_queue_sheds_with_429(self, data_files):
        # Capacity below the document's claim count: admission must
        # reject up front (429 + Retry-After), never half-enqueue.
        server = serve(workers=1, queue_capacity=1)
        try:
            body = json.dumps(
                {
                    "csv": str(data_files["nfl"]),
                    "article_path": str(data_files["nfl_article"]),
                    "incremental": False,
                }
            ).encode()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    urllib.request.Request(
                        server.url + "/check",
                        data=body,
                        headers={"Content-Type": "application/json"},
                    )
                )
            assert excinfo.value.code == 429
            assert "Retry-After" in excinfo.value.headers
            excinfo.value.close()
            assert server.service.queue.stats()["enqueued"] == 0
        finally:
            server.shutdown_gracefully()


@pytest.mark.faults
class TestFaultTolerance:
    def test_poison_jobs_deadletter_without_poisoning_the_stream(
        self, data_files
    ):
        server = serve(workers=1, retry=FAST_RETRY)
        try:
            with active(
                FaultSpec("queue.exec", "raise", times=0)
            ):
                events = post_check(
                    server.url,
                    {
                        "csv": str(data_files["nfl"]),
                        "article_path": str(data_files["nfl_article"]),
                    },
                )
            summary = events[-1]
            assert summary["event"] == "summary"
            n = summary["claims"]
            errors = [
                e for e in events if e["event"] == "error" and "index" in e
            ]
            assert len(errors) == n and summary["errors"] == n
            dead = get_json(server.url + "/deadletter")
            assert dead["count"] == n
            assert all("injected fault" in d["error"] for d in dead["deadletter"])
            stats = server.service.queue.stats()
            assert stats["retried"] >= n  # at least one retry each
            assert stats["deadlettered"] == n
        finally:
            server.shutdown_gracefully()

    def test_killed_workers_are_respawned_and_jobs_complete(
        self, data_files, capsys
    ):
        server = serve(
            workers=2,
            retry=RetryPolicy(max_attempts=5),
            visibility_timeout=1.0,
        )
        try:
            # Kill each worker thread once, mid-lease: no ack, no nack.
            # Recovery is reaper respawn + lease expiry + re-delivery.
            with active(
                FaultSpec("queue.lease", "raise", times=2)
            ):
                events = post_check(
                    server.url,
                    {
                        "csv": str(data_files["nfl"]),
                        "article_path": str(data_files["nfl_article"]),
                    },
                )
            oracle = cli_claims(
                capsys, data_files["nfl"], data_files["nfl_article"]
            )
            assert claims_of(events) == oracle
            pool = server.service.workers.stats()
            assert pool["worker_deaths"] >= 1
            assert pool["alive"] == 2  # respawned
            assert server.service.queue.stats()["expired_leases"] >= 1
        finally:
            server.shutdown_gracefully()

    def test_open_breaker_degrades_verdicts_instead_of_queueing(
        self, data_files
    ):
        server = serve(workers=1, breaker_threshold=1, breaker_cooldown=60.0)
        try:
            server.service.breaker.record_failure()  # force open
            assert server.service.breaker.state == "open"
            events = post_check(
                server.url,
                {
                    "csv": str(data_files["nfl"]),
                    "article_path": str(data_files["nfl_article"]),
                },
            )
            claims = claims_of(events)
            assert claims, "breaker-open stream still delivers verdicts"
            for claim in claims:
                assert claim["status"] == "unverifiable"
                assert claim["degraded"] is not None
            assert get_json(server.url + "/health")["status"] == "degraded"
        finally:
            server.shutdown_gracefully()


class TestDrainAndResume:
    def test_drain_journals_pending_jobs_and_restart_completes_them(
        self, tmp_path, data_files, capsys
    ):
        queue_dir = tmp_path / "queue"
        request = CheckRequest(
            csv_paths=(str(data_files["nfl"]),),
            article_path=str(data_files["nfl_article"]),
        )
        told: list[str] = []
        first = QueueService(queue_dir=queue_dir, workers=1)
        # Workers never started: everything admitted stays pending.
        admission = first.admit(
            request,
            "client",
            lambda index: lambda kind, job, p: told.append(kind),
        )
        n = len(admission.pending)
        assert n > 0
        assert first.drain() == n
        assert told == ["drained"] * n

        second = QueueService(queue_dir=queue_dir, workers=1)
        assert second.queue.resumed == n
        second.start()  # journaled jobs execute with no client attached
        assert wait_for(
            lambda: second.queue.stats()["completed"] == n
        ), second.queue.stats()
        # The resumed executions landed in the incremental tier:
        # resubmission answers entirely from cache, bit-identical to the
        # one-shot CLI.
        replay = second.admit(
            request, "client", lambda index: lambda *a: None
        )
        assert replay.n_cached == n and not replay.pending
        payloads = [
            e["claim"] for e in replay.events if e["event"] == "claim"
        ]
        oracle = cli_claims(
            capsys, data_files["nfl"], data_files["nfl_article"]
        )
        assert payloads == oracle
        second.drain()


@pytest.mark.faults
class TestKillDashNine:
    def test_sigkill_mid_load_resumes_from_the_journal(
        self, tmp_path, data_files, capsys
    ):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        queue_dir = tmp_path / "queue"
        state_dir = tmp_path / "fault-state"
        state_dir.mkdir()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        # Stall every worker loop so admitted jobs stay pending long
        # enough to be killed mid-load.
        env[ENV_FAULTS] = encode_specs(
            (FaultSpec("queue.worker", "sleep", seconds=30.0, times=0),)
        )
        env[ENV_STATE] = str(state_dir)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--queue-dir", str(queue_dir), "--queue-workers", "1",
            ],
            env=env,
            cwd=repo_root,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            url = banner.split("listening on ", 1)[1].split()[0]
            # Admission succeeds; the stream will never finish (workers
            # are stalled), so fire-and-forget the request body.
            body = json.dumps(
                {
                    "csv": str(data_files["nfl"]),
                    "article_path": str(data_files["nfl_article"]),
                }
            ).encode()
            request = urllib.request.Request(
                url + "/check",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(TimeoutError):
                with urllib.request.urlopen(request, timeout=3) as response:
                    response.read()
            journal = queue_dir / "queue.journal"
            assert wait_for(journal.exists)
            puts = [
                json.loads(line)
                for line in journal.read_text().splitlines()
                if json.loads(line).get("op") == "put"
            ]
            assert puts, "jobs journaled before the kill"
        finally:
            proc.kill()  # SIGKILL: no drain, no compaction, no cleanup
            proc.wait(timeout=10)

        # Restart without faults: the journaled jobs must complete.
        env.pop(ENV_FAULTS)
        env.pop(ENV_STATE)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--queue-dir", str(queue_dir), "--queue-workers", "2",
            ],
            env=env,
            cwd=repo_root,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert f"resumed {len(puts)} journaled job(s)" in banner
            url = banner.split("listening on ", 1)[1].split()[0]
            assert wait_for(
                lambda: get_json(url + "/health")["queue"]["completed"]
                == len(puts),
                timeout=30.0,
            )
            # Bit-identity across the crash: resubmission is answered
            # from the resumed executions, matching the one-shot CLI.
            events = post_check(
                url,
                {
                    "csv": str(data_files["nfl"]),
                    "article_path": str(data_files["nfl_article"]),
                },
            )
            assert all(
                e["cached"] for e in events if e["event"] == "claim"
            )
            oracle = cli_claims(
                capsys, data_files["nfl"], data_files["nfl_article"]
            )
            assert claims_of(events) == oracle
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)
