"""Unit tests for the durable job queue, breaker, and rate limiter.

All NumPy-free on purpose: delivery semantics (at-least-once execution,
exactly-once ack, first-ack-wins), durability (journal replay, truncated
tails, compaction), backpressure, retry jitter bounds, breaker state
transitions, and per-client token buckets are pure control-plane logic
and must hold on the no-NumPy CI leg too.
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.errors import QueueFullError, ReproError
from repro.harness.parallel import RetryPolicy
from repro.service.queue import DurableJobQueue
from repro.service.ratelimit import ClientRateLimiter, TokenBucket
from repro.service.workers import CircuitBreaker


def submit(queue, key, group="g", index=0, subscriber=None):
    return queue.submit(
        key=key,
        group=group,
        index=index,
        scope="scope",
        source={"article": "text", "title": "t"},
        claim_fp=key,
        subscriber=subscriber,
    )


class Recorder:
    """Subscriber capturing every (kind, job id, payload) notification."""

    def __init__(self):
        self.events = []

    def __call__(self, kind, job, payload):
        self.events.append((kind, job.id, payload))


class TestLeaseAckNack:
    def test_ack_delivers_payload_to_subscriber(self):
        queue = DurableJobQueue()
        seen = Recorder()
        job, done = submit(queue, "k1", subscriber=seen)
        assert done is None
        batch = queue.lease_group("w1", visibility_timeout=30.0)
        assert [j.id for j in batch] == [job.id]
        assert queue.ack(job.id, {"status": "verified"})
        assert seen.events == [("ack", job.id, {"status": "verified"})]
        assert queue.stats()["acked"] == 1

    def test_group_is_leased_together_in_index_order(self):
        queue = DurableJobQueue()
        jobs = [
            submit(queue, f"k{i}", group="doc", index=i)[0]
            for i in (2, 0, 1)
        ]
        submit(queue, "other", group="doc2", index=0)
        batch = queue.lease_group("w1", visibility_timeout=30.0)
        assert [j.index for j in batch] == [0, 1, 2]
        assert {j.id for j in batch} == {j.id for j in jobs}

    def test_leased_jobs_are_not_re_leased(self):
        queue = DurableJobQueue()
        submit(queue, "k1")
        assert queue.lease_group("w1", visibility_timeout=30.0)
        assert queue.lease_group("w2", visibility_timeout=30.0) == []

    def test_first_ack_wins_duplicates_are_dropped(self):
        queue = DurableJobQueue()
        seen = Recorder()
        job, _ = submit(queue, "k1", subscriber=seen)
        queue.lease_group("w1", visibility_timeout=30.0)
        assert queue.ack(job.id, {"status": "verified"})
        assert not queue.ack(job.id, {"status": "contradicted"})
        assert len(seen.events) == 1
        assert queue.stats()["duplicate_acks"] == 1

    def test_nack_schedules_retry_with_future_not_before(self):
        queue = DurableJobQueue(retry=RetryPolicy(max_attempts=3))
        job, _ = submit(queue, "k1")
        queue.lease_group("w1", visibility_timeout=30.0)
        queue.nack(job.id, "boom")
        assert job.state == "pending"
        assert job.not_before > time.monotonic()
        assert queue.stats()["retried"] == 1
        # Backoff means not immediately leasable.
        assert queue.lease_group("w1", visibility_timeout=30.0) == []

    def test_exhausted_attempts_dead_letter_with_notification(self):
        queue = DurableJobQueue(retry=RetryPolicy(max_attempts=1))
        seen = Recorder()
        job, _ = submit(queue, "k1", subscriber=seen)
        queue.lease_group("w1", visibility_timeout=30.0)
        queue.nack(job.id, "poison claim")
        assert job.state == "dead"
        assert seen.events == [("dead", job.id, "poison claim")]
        dead = queue.deadletter()
        assert len(dead) == 1
        assert dead[0]["error"] == "poison claim"
        assert dead[0]["attempts"] == 1

    def test_expired_lease_returns_to_pending_and_redelivers(self):
        queue = DurableJobQueue(retry=RetryPolicy(max_attempts=5))
        job, _ = submit(queue, "k1")
        queue.lease_group("w1", visibility_timeout=0.01)
        time.sleep(0.05)
        assert queue.expire_leases() == 1
        assert job.state == "pending"
        # Retry backoff applies; wait it out, then the job re-leases.
        time.sleep(job.not_before - time.monotonic() + 0.01)
        batch = queue.lease_group("w2", visibility_timeout=30.0)
        assert [j.id for j in batch] == [job.id]
        assert batch[0].attempts == 2


class TestIdempotency:
    def test_pending_key_attaches_subscriber_instead_of_new_job(self):
        queue = DurableJobQueue()
        first, second = Recorder(), Recorder()
        job, _ = submit(queue, "k1", subscriber=first)
        again, done = submit(queue, "k1", subscriber=second)
        assert again.id == job.id and done is None
        assert queue.stats()["deduped"] == 1
        queue.lease_group("w1", visibility_timeout=30.0)
        queue.ack(job.id, {"status": "verified"})
        assert first.events == second.events  # one execution, fan-out

    def test_acked_key_returns_payload_immediately(self):
        queue = DurableJobQueue()
        job, _ = submit(queue, "k1")
        queue.lease_group("w1", visibility_timeout=30.0)
        queue.ack(job.id, {"status": "verified"})
        again, done = submit(queue, "k1")
        assert done == {"status": "verified"}
        assert queue.stats()["enqueued"] == 1

    def test_dead_key_revives_as_fresh_job(self):
        queue = DurableJobQueue(retry=RetryPolicy(max_attempts=1))
        job, _ = submit(queue, "k1")
        queue.lease_group("w1", visibility_timeout=30.0)
        queue.nack(job.id, "boom")
        assert job.state == "dead"
        revived, done = submit(queue, "k1")
        assert done is None and revived.id != job.id
        assert revived.attempts == 0


class TestBackpressure:
    def test_capacity_rejects_with_retry_after(self):
        queue = DurableJobQueue(capacity=2)
        submit(queue, "k1")
        submit(queue, "k2")
        with pytest.raises(QueueFullError) as excinfo:
            submit(queue, "k3")
        assert excinfo.value.retry_after_seconds >= 1.0
        assert queue.stats()["rejected"] == 1

    def test_acked_jobs_free_capacity(self):
        queue = DurableJobQueue(capacity=1)
        job, _ = submit(queue, "k1")
        queue.lease_group("w1", visibility_timeout=30.0)
        queue.ack(job.id, {"status": "verified"})
        submit(queue, "k2")  # does not raise

    def test_draining_queue_refuses_admission(self):
        queue = DurableJobQueue()
        queue.drain(timeout=0.1)
        with pytest.raises(ReproError):
            submit(queue, "k1")


class TestDurability:
    def test_restart_resumes_unacked_jobs_only(self, tmp_path):
        queue = DurableJobQueue(tmp_path)
        done, _ = submit(queue, "done", group="g", index=0)
        kept, _ = submit(queue, "kept", group="g", index=1)
        queue.lease_group("w1", visibility_timeout=30.0)
        queue.ack(done.id, {"status": "verified"})
        # Crash: no drain, no close. The lease on "kept" is volatile.
        queue._journal.close()

        reborn = DurableJobQueue(tmp_path)
        assert reborn.resumed == 1
        batch = reborn.lease_group("w1", visibility_timeout=30.0)
        assert [j.key for j in batch] == ["kept"]
        assert batch[0].source == {"article": "text", "title": "t"}
        # The acked job answers from its journaled payload, not a re-run.
        again, payload = submit(reborn, "done")
        assert payload == {"status": "verified"}

    def test_dead_letter_survives_restart(self, tmp_path):
        queue = DurableJobQueue(tmp_path, retry=RetryPolicy(max_attempts=1))
        job, _ = submit(queue, "k1")
        queue.lease_group("w1", visibility_timeout=30.0)
        queue.nack(job.id, "poison")
        queue.close()

        reborn = DurableJobQueue(tmp_path)
        dead = reborn.deadletter()
        assert len(dead) == 1 and dead[0]["error"] == "poison"
        assert reborn.lease_group("w1", visibility_timeout=30.0) == []

    def test_truncated_tail_is_tolerated(self, tmp_path):
        queue = DurableJobQueue(tmp_path)
        submit(queue, "k1")
        submit(queue, "k2")
        queue.close()
        path = tmp_path / "queue.journal"
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # crash mid-append

        reborn = DurableJobQueue(tmp_path)
        assert reborn.corrupt_records == 1
        assert reborn.resumed == 1  # k1 intact, k2's record truncated

    def test_compaction_drops_completed_jobs(self, tmp_path):
        queue = DurableJobQueue(tmp_path, compact_min_records=1)
        jobs = [submit(queue, f"k{i}", index=i)[0] for i in range(8)]
        queue.lease_group("w1", visibility_timeout=30.0)
        for job in jobs[:-1]:
            queue.ack(job.id, {"status": "verified"})
        queue.close()
        lines = [
            json.loads(line)
            for line in (tmp_path / "queue.journal").read_text().splitlines()
        ]
        # Only the unacked job survives compaction; acked job ids are
        # gone entirely (job + ack records dropped together).
        assert [r["job"]["key"] for r in lines] == [jobs[-1].key]

    def test_drain_notifies_pending_and_reports_journaled(self, tmp_path):
        queue = DurableJobQueue(tmp_path)
        seen = Recorder()
        job, _ = submit(queue, "k1", subscriber=seen)
        journaled = queue.drain(timeout=0.1)
        assert journaled == 1
        assert seen.events == [("drained", job.id, None)]
        queue.close()
        assert DurableJobQueue(tmp_path).resumed == 1


class TestRetryJitter:
    def test_sleep_seconds_is_bounded_by_base_and_cap(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=0.2)
        rng = random.Random(7)
        previous = None
        for ordinal in range(1, 30):
            slept = policy.sleep_seconds(ordinal, previous=previous, rng=rng)
            assert 0.05 <= slept <= 0.2
            previous = slept

    def test_decorrelated_growth_never_exceeds_three_times_previous(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=100.0)
        rng = random.Random(11)
        previous = policy.sleep_seconds(1, rng=rng)
        for ordinal in range(2, 20):
            slept = policy.sleep_seconds(ordinal, previous=previous, rng=rng)
            assert slept <= 3.0 * previous + 1e-12
            previous = slept

    def test_deterministic_backoff_schedule_is_unchanged(self):
        # The jitter satellite must not disturb the pinned deterministic
        # schedule used by the corpus harness.
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=0.2)
        assert [policy.backoff_seconds(n) for n in (1, 2, 3, 10)] == [
            0.05, 0.1, 0.2, 0.2,
        ]


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=60.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=0.01)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.02)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # everyone else still sheds
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens_for_a_fresh_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2


class TestRateLimiter:
    def test_burst_passes_then_limited_with_retry_after(self):
        limiter = ClientRateLimiter(rate=1.0, burst=2.0)
        assert limiter.allow("alice") == (True, 0.0)
        assert limiter.allow("alice") == (True, 0.0)
        allowed, retry_after = limiter.allow("alice")
        assert not allowed and 0.0 < retry_after <= 1.0

    def test_clients_are_metered_independently(self):
        limiter = ClientRateLimiter(rate=0.001, burst=1.0)
        assert limiter.allow("alice")[0]
        assert not limiter.allow("alice")[0]
        assert limiter.allow("bob")[0]

    def test_zero_rate_disables_limiting(self):
        limiter = ClientRateLimiter(rate=0.0)
        for _ in range(100):
            assert limiter.allow("alice") == (True, 0.0)
        assert limiter.stats()["enabled"] is False

    def test_tokens_refill_over_time(self):
        bucket = TokenBucket(rate=10.0, burst=1.0, now=0.0)
        assert bucket.take(0.0)
        assert not bucket.take(0.01)
        assert bucket.take(0.2)  # 0.19s * 10/s restored the token

    def test_lru_bound_evicts_oldest_client(self):
        limiter = ClientRateLimiter(rate=0.001, burst=1.0, max_clients=2)
        limiter.allow("a")
        limiter.allow("b")
        limiter.allow("c")  # evicts a
        assert limiter.stats()["clients"] == 2
        # a comes back as a fresh bucket (full burst again) — eviction
        # may refill, never block.
        assert limiter.allow("a")[0]
