"""Client behavior when the NDJSON stream dies mid-flight.

The wire protocol is HTTP/1.0 close-delimited, so a crashed server and a
finished response look identical at the transport layer — both are EOF.
The client must therefore judge completeness by *content* (a terminal
``summary`` or index-less ``error`` event), surface anything else as a
structured :class:`StreamInterruptedError` carrying the events it did
receive, and spend its retry budget on resubmission. A scripted raw
socket server plays the failure modes a real one can't do on demand.
These tests drive only the client, so they run on the no-NumPy leg.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import StreamInterruptedError
from repro.harness.parallel import RetryPolicy
from repro.service.client import ServiceClient, _is_complete

ONE_TRY = RetryPolicy(max_attempts=1)
TWO_TRIES = RetryPolicy(max_attempts=2, backoff_base=0.001, backoff_cap=0.002)

CLAIM = json.dumps(
    {"event": "claim", "index": 0, "cached": False, "claim": {"status": "verified"}}
).encode()
SUMMARY = json.dumps({"event": "summary", "claims": 1}).encode()
TERMINAL_ERROR = json.dumps({"event": "error", "error": "boom"}).encode()
CLAIM_ERROR = json.dumps({"event": "error", "index": 0, "error": "poison"}).encode()

HEADERS = b"HTTP/1.0 200 OK\r\nContent-Type: application/x-ndjson\r\n\r\n"


class ScriptedServer:
    """One scripted NDJSON body per request; the last script repeats."""

    def __init__(self, bodies: list):
        self.bodies = list(bodies)
        self.requests = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.url = f"http://127.0.0.1:{self._sock.getsockname()[1]}"
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def close(self):
        self._sock.close()

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                self._drain_request(conn)
                body = self.bodies[min(self.requests, len(self.bodies) - 1)]
                self.requests += 1
                if body is not None:
                    try:
                        conn.sendall(HEADERS + body)
                    except OSError:
                        pass
                # Close abruptly either way: HTTP/1.0, EOF ends the body.

    @staticmethod
    def _drain_request(conn):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return
            data += chunk
        head, _, tail = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(tail) < length:
            chunk = conn.recv(65536)
            if not chunk:
                return
            tail += chunk


@pytest.fixture()
def scripted():
    servers = []

    def factory(*bodies):
        server = ScriptedServer(list(bodies))
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


def client_for(server, retry=ONE_TRY):
    return ServiceClient(server.url, retry=retry, sleep=lambda _s: None)


class TestCompleteness:
    def test_summary_terminates_a_stream(self):
        assert _is_complete([{"event": "summary"}])

    def test_index_less_error_is_terminal_but_claim_errors_are_not(self):
        assert _is_complete([{"event": "error", "error": "x"}])
        assert not _is_complete([{"event": "error", "index": 3, "error": "x"}])
        assert not _is_complete([{"event": "claim", "index": 0}])
        assert not _is_complete([])

    def test_terminal_error_event_needs_no_retry(self, scripted):
        server = scripted(CLAIM + b"\n" + TERMINAL_ERROR + b"\n")
        client = client_for(server, retry=TWO_TRIES)
        events = client.check({"csv": "x"})
        assert events[-1] == {"event": "error", "error": "boom"}
        assert client.retries == 0 and server.requests == 1


class TestInterruption:
    def test_mid_frame_truncation_is_structured(self, scripted):
        # The connection died halfway through writing event 1.
        server = scripted(CLAIM + b"\n" + SUMMARY[: len(SUMMARY) // 2])
        with pytest.raises(StreamInterruptedError, match="NDJSON frame") as info:
            client_for(server).check({"csv": "x"})
        assert [e["event"] for e in info.value.events] == ["claim"]

    def test_clean_eof_without_summary_is_an_interruption(self, scripted):
        # A crash between frames: valid JSON so far, then EOF. At the
        # transport layer this is indistinguishable from success.
        server = scripted(CLAIM + b"\n")
        with pytest.raises(
            StreamInterruptedError, match="no terminal summary"
        ) as info:
            client_for(server).check({"csv": "x"})
        assert info.value.events == [json.loads(CLAIM)]

    def test_indexed_error_tail_is_an_interruption(self, scripted):
        server = scripted(CLAIM + b"\n" + CLAIM_ERROR + b"\n")
        with pytest.raises(StreamInterruptedError):
            client_for(server).check({"csv": "x"})

    def test_connection_reset_before_headers(self, scripted):
        server = scripted(None)  # accept, read, close without a byte
        with pytest.raises(StreamInterruptedError, match="connection lost") as info:
            client_for(server).check({"csv": "x"})
        assert info.value.events == []

    def test_refused_connection_is_an_interruption_not_a_hang(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            f"http://127.0.0.1:{port}", retry=ONE_TRY,
            timeout=5.0, sleep=lambda _s: None,
        )
        with pytest.raises(StreamInterruptedError):
            client.check({"csv": "x"})


class TestRetrySemantics:
    def test_interrupted_stream_is_retried_and_recovers(self, scripted):
        server = scripted(CLAIM + b"\n", CLAIM + b"\n" + SUMMARY + b"\n")
        client = client_for(server, retry=TWO_TRIES)
        events = client.check({"csv": "x"})
        assert events[-1]["event"] == "summary"
        assert client.retries == 1 and server.requests == 2

    def test_exhausted_budget_raises_the_last_interruption(self, scripted):
        server = scripted(CLAIM + b"\n")  # never completes
        client = client_for(server, retry=TWO_TRIES)
        with pytest.raises(StreamInterruptedError) as info:
            client.check({"csv": "x"})
        assert client.retries == 1 and server.requests == 2
        assert info.value.events  # partial progress still reported

    def test_backoff_sleeps_between_stream_retries(self, scripted):
        sleeps = []
        server = scripted(CLAIM + b"\n")
        client = ServiceClient(
            server.url,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=1.0),
            sleep=sleeps.append,
        )
        with pytest.raises(StreamInterruptedError):
            client.check({"csv": "x"})
        assert len(sleeps) == 2
        assert all(s > 0 for s in sleeps)
