"""Unit tests for fingerprints and the incremental LRU (no NumPy needed)."""

from __future__ import annotations

import threading

import pytest

from repro.core.checker import claim_fingerprint
from repro.core.config import AggCheckerConfig
from repro.service.incremental import (
    IncrementalCache,
    config_fingerprint,
    scope_fingerprint,
)
from repro.text.claims import detect_claims
from repro.text.document import Document


def claims_of(title: str, paragraphs: list[str]):
    return detect_claims(Document.from_plain_text(title, paragraphs))


class TestClaimFingerprint:
    def test_stable_across_identical_documents(self):
        first = claims_of("t", ["There were four bans.", "Then five more."])
        second = claims_of("t", ["There were four bans.", "Then five more."])
        assert [claim_fingerprint(c) for c in first] == [
            claim_fingerprint(c) for c in second
        ]

    def test_editing_one_sentence_changes_only_that_claim(self):
        base = claims_of("t", ["There were four bans.", "Then five more came."])
        edited = claims_of("t", ["There were nine bans.", "Then five more came."])
        assert len(base) == len(edited) == 2
        assert claim_fingerprint(base[0]) != claim_fingerprint(edited[0])
        assert claim_fingerprint(base[1]) == claim_fingerprint(edited[1])

    def test_previous_sentence_is_part_of_the_key(self):
        base = claims_of("t", ["The teams met. Four players scored."])
        edited = claims_of("t", ["The players met. Four players scored."])
        assert claim_fingerprint(base[-1]) != claim_fingerprint(edited[-1])

    def test_headline_is_part_of_the_key(self):
        base = claims_of("Suspensions", ["Four players were banned."])
        renamed = claims_of("Transfers", ["Four players were banned."])
        assert claim_fingerprint(base[0]) != claim_fingerprint(renamed[0])

    def test_inserting_an_earlier_paragraph_preserves_the_key(self):
        # The ordinal shifts but nothing the pipeline reads changes.
        base = claims_of("t", ["Four players were banned."])
        shifted = claims_of(
            "t", ["An intro with no numbers.", "Four players were banned."]
        )
        assert base[0].ordinal != shifted[-1].ordinal or len(shifted) == 1
        assert claim_fingerprint(base[0]) == claim_fingerprint(shifted[-1])


class TestConfigFingerprint:
    def test_equal_configs_agree(self):
        assert config_fingerprint(AggCheckerConfig()) == config_fingerprint(
            AggCheckerConfig()
        )

    def test_any_knob_changes_the_key(self):
        base = config_fingerprint(AggCheckerConfig())
        assert base != config_fingerprint(AggCheckerConfig(predicate_hits=5))
        assert base != config_fingerprint(
            AggCheckerConfig().with_em(p_true=0.9)
        )

    def test_data_dictionary_content_is_part_of_the_key(self):
        config = AggCheckerConfig()
        base = config_fingerprint(config, None)
        assert base != config_fingerprint(config, {"Games": "length"})
        assert config_fingerprint(
            config, {"a": "x", "b": "y"}
        ) == config_fingerprint(config, {"b": "y", "a": "x"})

    def test_scope_fingerprint_folds_database(self):
        config = AggCheckerConfig()
        assert scope_fingerprint("db1", config) != scope_fingerprint(
            "db2", config
        )


class TestIncrementalCache:
    def test_round_trip_and_stats(self):
        cache = IncrementalCache(max_entries=8)
        key = ("scope", "claim")
        assert cache.get(key) is None
        cache.put(key, {"status": "verified"})
        assert cache.get(key) == {"status": "verified"}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate() == 0.5

    def test_lru_eviction_order(self):
        cache = IncrementalCache(max_entries=2)
        cache.put(("s", "a"), {"v": 1})
        cache.put(("s", "b"), {"v": 2})
        assert cache.get(("s", "a")) is not None  # refresh a
        cache.put(("s", "c"), {"v": 3})  # evicts b, the LRU
        assert cache.get(("s", "b")) is None
        assert cache.get(("s", "a")) is not None
        assert cache.get(("s", "c")) is not None
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_put_overwrites_in_place(self):
        cache = IncrementalCache(max_entries=2)
        cache.put(("s", "a"), {"v": 1})
        cache.put(("s", "a"), {"v": 2})
        assert len(cache) == 1
        assert cache.get(("s", "a")) == {"v": 2}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            IncrementalCache(max_entries=0)

    def test_clear(self):
        cache = IncrementalCache()
        cache.put(("s", "a"), {})
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_mixed_access_is_safe(self):
        cache = IncrementalCache(max_entries=64)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for i in range(200):
                    key = ("s", f"claim-{(seed * 7 + i) % 96}")
                    if i % 3 == 0:
                        cache.put(key, {"v": i})
                    else:
                        cache.get(key)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
