"""End-to-end service tests: a live server on a loopback port.

Covers the PR's acceptance points: concurrent requests produce verdicts
bit-identical to the one-shot ``check`` CLI, the incremental tier
invalidates on CSV edits (content fingerprint change), the NDJSON
streaming protocol frames correctly on the wire, and graceful shutdown
drains in-flight requests. Skipped wholesale on the no-NumPy CI leg (the
pipeline needs the model layer) via the path rule in tests/conftest.py.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.core.config import AggCheckerConfig
from repro.service import CheckRequest, VerificationService, create_server

NFL_CSV = """Name,Team,Games,Category,Year
Ray Rice,BAL,2,domestic violence,2014
Art Schlichter,BAL,indef,gambling,1983
Stanley Wilson,CIN,indef,"substance abuse, repeated offense",1989
Dexter Manley,WAS,indef,"substance abuse, repeated offense",1991
Roy Tarpley,DAL,indef,"substance abuse, repeated offense",1995
Josh Gordon,CLE,16,substance abuse,2014
"""

SALES_CSV = """product,region,units,price
widget,north,4,10
widget,south,6,12
gadget,north,3,30
gadget,south,7,25
sprocket,north,5,8
"""

NFL_ARTICLE = """
<title>Punishing players</title>
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"""

SALES_ARTICLE = (
    "We sold five kinds of items across two regions.\n\n"
    "The north region moved 12 units in total."
)


@pytest.fixture()
def data_files(tmp_path):
    nfl = tmp_path / "nflsuspensions.csv"
    nfl.write_text(NFL_CSV)
    sales = tmp_path / "sales.csv"
    sales.write_text(SALES_CSV)
    nfl_article = tmp_path / "nfl_article.html"
    nfl_article.write_text(NFL_ARTICLE)
    sales_article = tmp_path / "sales_article.txt"
    sales_article.write_text(SALES_ARTICLE)
    return {
        "nfl": nfl,
        "sales": sales,
        "nfl_article": nfl_article,
        "sales_article": sales_article,
    }


@pytest.fixture()
def server():
    instance = create_server(port=0)
    thread = threading.Thread(target=instance.serve_forever)
    thread.start()
    try:
        yield instance
    finally:
        instance.shutdown_gracefully()
        thread.join(timeout=10)
        assert not thread.is_alive()


def post_check(url: str, payload: dict) -> list[dict]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + "/check", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        return [json.loads(line) for line in response.read().splitlines()]


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


def cli_claims(capsys, csv_path, article_path) -> list[dict]:
    """The ``check --json`` per-claim payloads (the bit-identity oracle)."""
    code = cli_main(
        ["check", "--csv", str(csv_path), "--article", str(article_path),
         "--json"]
    )
    assert code in (0, 1)
    return json.loads(capsys.readouterr().out)["claims"]


def claims_of(events: list[dict]) -> list[dict]:
    ordered = sorted(
        (e for e in events if e["event"] == "claim"), key=lambda e: e["index"]
    )
    assert [e["index"] for e in ordered] == list(range(len(ordered)))
    return [e["claim"] for e in ordered]


class TestConcurrentBitIdentity:
    def test_concurrent_requests_match_one_shot_cli(
        self, server, data_files, capsys
    ):
        """Many parallel requests across two databases == the CLI, bit for bit."""
        jobs = {
            "nfl": {
                "csv": [str(data_files["nfl"])],
                "article_path": str(data_files["nfl_article"]),
            },
            "sales": {
                "csv": [str(data_files["sales"])],
                "article_path": str(data_files["sales_article"]),
            },
        }
        results: dict[tuple[str, int], list[dict]] = {}
        errors: list[BaseException] = []

        def run(name: str, attempt: int) -> None:
            try:
                results[(name, attempt)] = post_check(server.url, jobs[name])
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(name, attempt))
            for attempt in range(3)
            for name in jobs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

        oracles = {
            "nfl": cli_claims(
                capsys, data_files["nfl"], data_files["nfl_article"]
            ),
            "sales": cli_claims(
                capsys, data_files["sales"], data_files["sales_article"]
            ),
        }
        for (name, _), events in results.items():
            assert claims_of(events) == oracles[name]
        health = get_json(server.url + "/health")
        assert health["requests"] == 6
        assert health["databases"] == 2

    def test_database_reference_serves_from_registered_checker(
        self, server, data_files
    ):
        payload = {
            "csv": [str(data_files["nfl"])],
            "article_path": str(data_files["nfl_article"]),
            "incremental": False,
        }
        first = post_check(server.url, payload)
        fingerprint = first[0]["database_fingerprint"]
        by_reference = post_check(
            server.url,
            {
                "database": fingerprint,
                "article_path": str(data_files["nfl_article"]),
                "incremental": False,
            },
        )
        assert claims_of(by_reference) == claims_of(first)
        assert by_reference[0]["database_fingerprint"] == fingerprint
        assert get_json(server.url + "/health")["databases"] == 1

    def test_checker_fingerprint_pins_dictionary_exactly(
        self, server, data_files, tmp_path
    ):
        """Same CSV content under two dictionaries: the content
        fingerprint becomes ambiguous, the checker fingerprint stays
        exact."""
        dict_a = tmp_path / "dict_a.csv"
        dict_a.write_text("column,description\nGames,suspension length\n")
        dict_b = tmp_path / "dict_b.csv"
        dict_b.write_text("column,description\nGames,match count\n")
        base = {
            "csv": [str(data_files["nfl"])],
            "article_path": str(data_files["nfl_article"]),
        }
        first = post_check(server.url, dict(base, data_dict_path=str(dict_a)))
        second = post_check(server.url, dict(base, data_dict_path=str(dict_b)))
        assert (
            first[0]["database_fingerprint"]
            == second[0]["database_fingerprint"]
        )
        assert (
            first[0]["checker_fingerprint"] != second[0]["checker_fingerprint"]
        )

        # The content fingerprint is now ambiguous -> 422 with guidance.
        body = json.dumps(
            {
                "database": first[0]["database_fingerprint"],
                "article_path": str(data_files["nfl_article"]),
            }
        ).encode()
        request = urllib.request.Request(
            server.url + "/check", data=body, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 422
        assert b"checker_fingerprint" in excinfo.value.read()

        # The checker fingerprints still resolve, each to its own scope.
        for events in (first, second):
            replay = post_check(
                server.url,
                {
                    "database": events[0]["checker_fingerprint"],
                    "article_path": str(data_files["nfl_article"]),
                },
            )
            assert (
                replay[0]["checker_fingerprint"]
                == events[0]["checker_fingerprint"]
            )
            assert claims_of(replay) == claims_of(events)

    def test_lru_eviction_bounds_warm_checkers(self, data_files):
        instance = create_server(port=0, max_databases=1)
        thread = threading.Thread(target=instance.serve_forever)
        thread.start()
        try:
            nfl = {
                "csv": [str(data_files["nfl"])],
                "article_path": str(data_files["nfl_article"]),
            }
            first = post_check(instance.url, nfl)
            post_check(
                instance.url,
                {
                    "csv": [str(data_files["sales"])],
                    "article_path": str(data_files["sales_article"]),
                },
            )
            # The NFL checker was evicted: pool holds one database ...
            assert get_json(instance.url + "/health")["databases"] == 1
            # ... its stale reference is rejected ...
            body = json.dumps(
                {
                    "database": first[0]["database_fingerprint"],
                    "article_path": str(data_files["nfl_article"]),
                }
            ).encode()
            request = urllib.request.Request(
                instance.url + "/check", data=body, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 422
            # ... and resubmitting rebuilds with identical verdicts,
            # served straight from the surviving incremental tier.
            again = post_check(instance.url, nfl)
            assert claims_of(again) == claims_of(first)
            assert all(
                e["cached"] for e in again if e["event"] == "claim"
            )
        finally:
            instance.shutdown_gracefully()
            thread.join(timeout=10)

    def test_unknown_database_reference_is_rejected(self, server, data_files):
        body = json.dumps(
            {"database": "f" * 64, "article": "Four things."}
        ).encode()
        request = urllib.request.Request(
            server.url + "/check", data=body, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 422
        assert b"unknown database fingerprint" in excinfo.value.read()

    def test_warm_pool_keyed_by_content_not_path(self, server, data_files, tmp_path):
        copy = tmp_path / "renamed"
        copy.mkdir()
        copied_csv = copy / "nflsuspensions.csv"
        copied_csv.write_text(NFL_CSV)
        payload = {
            "csv": [str(data_files["nfl"])],
            "article_path": str(data_files["nfl_article"]),
        }
        post_check(server.url, payload)
        payload["csv"] = [str(copied_csv)]
        post_check(server.url, payload)
        # Same content fingerprint -> one pooled checker, not two.
        assert get_json(server.url + "/health")["databases"] == 1


class TestIncrementalTier:
    def test_resubmission_serves_from_cache_and_matches(self, server, data_files):
        payload = {
            "csv": [str(data_files["nfl"])],
            "article_path": str(data_files["nfl_article"]),
        }
        first = post_check(server.url, payload)
        second = post_check(server.url, payload)
        assert all(not e["cached"] for e in first if e["event"] == "claim")
        assert all(e["cached"] for e in second if e["event"] == "claim")
        assert claims_of(first) == claims_of(second)
        summary = second[-1]
        assert summary["evaluated_claims"] == 0
        assert summary["engine"]["physical_queries"] == 0

    def test_csv_edit_invalidates_by_fingerprint(
        self, server, data_files, capsys
    ):
        payload = {
            "csv": [str(data_files["nfl"])],
            "article_path": str(data_files["nfl_article"]),
        }
        first = post_check(server.url, payload)
        # Remove a row: the database content fingerprint must change.
        edited = NFL_CSV.replace(
            "Art Schlichter,BAL,indef,gambling,1983\n", ""
        )
        data_files["nfl"].write_text(edited)
        second = post_check(server.url, payload)

        assert second[0]["database_fingerprint"] != first[0]["database_fingerprint"]
        # Every claim re-evaluated: the old fingerprint keys are unreachable.
        assert all(not e["cached"] for e in second if e["event"] == "claim")
        assert second[-1]["engine"]["physical_queries"] > 0
        # ... and against the *new* data: identical to a cold CLI run on it.
        assert claims_of(second) == cli_claims(
            capsys, data_files["nfl"], data_files["nfl_article"]
        )
        # Two distinct database contents are now pooled.
        assert get_json(server.url + "/health")["databases"] == 2

    def test_document_edit_reevaluates_only_changed_claims(
        self, server, data_files, tmp_path
    ):
        article = tmp_path / "edit.txt"
        article.write_text(
            "There were four previous lifetime bans in my database.\n\n"
            "Exactly one was for gambling."
        )
        payload = {
            "csv": [str(data_files["nfl"])],
            "article_path": str(article),
        }
        first = post_check(server.url, payload)
        assert len(claims_of(first)) == 2

        article.write_text(
            "There were nine previous lifetime bans in my database.\n\n"
            "Exactly one was for gambling."
        )
        second = post_check(server.url, payload)
        by_index = {
            e["index"]: e for e in second if e["event"] == "claim"
        }
        assert by_index[0]["cached"] is False  # the edited sentence
        assert by_index[1]["cached"] is True  # untouched paragraph
        assert by_index[0]["claim"]["status"] == "erroneous"
        assert second[-1]["evaluated_claims"] == 1
        assert second[-1]["cached_claims"] == 1

    def test_incremental_opt_out_per_request(self, server, data_files):
        payload = {
            "csv": [str(data_files["nfl"])],
            "article_path": str(data_files["nfl_article"]),
            "incremental": False,
        }
        first = post_check(server.url, payload)
        second = post_check(server.url, payload)
        for events in (first, second):
            assert all(not e["cached"] for e in events if e["event"] == "claim")
        assert claims_of(first) == claims_of(second)


class TestStreamingProtocol:
    def test_wire_framing(self, server, data_files):
        """Read the raw socket: headers, then one JSON object per line."""
        body = json.dumps(
            {
                "csv": [str(data_files["nfl"])],
                "article_path": str(data_files["nfl_article"]),
            }
        ).encode("utf-8")
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as sock:
            request = (
                b"POST /check HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n"
            ) + body
            sock.sendall(request)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        headers, _, payload = raw.partition(b"\r\n\r\n")
        assert b" 200 " in headers.splitlines()[0]
        assert b"application/x-ndjson" in headers
        lines = payload.split(b"\n")
        assert lines[-1] == b""  # every event line is newline-terminated
        events = [json.loads(line) for line in lines[:-1]]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "summary"
        assert set(kinds[1:-1]) == {"claim"}
        assert events[0]["claims"] == len(kinds) - 2

    def test_cached_claims_stream_before_fresh_work(self, server, data_files):
        """Events are ordered cached-first: instant feedback on warm claims."""
        article = data_files["sales_article"]
        payload = {
            "csv": [str(data_files["sales"])],
            "article_path": str(article),
        }
        post_check(server.url, payload)
        article.write_text(
            "We sold five kinds of items across two regions.\n\n"
            "The north region moved 999 units in total."
        )
        events = post_check(server.url, payload)
        claim_events = [e for e in events if e["event"] == "claim"]
        cached_positions = [
            i for i, e in enumerate(claim_events) if e["cached"]
        ]
        fresh_positions = [
            i for i, e in enumerate(claim_events) if not e["cached"]
        ]
        assert cached_positions and fresh_positions
        assert max(cached_positions) < min(fresh_positions)


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight_request(self, data_files):
        instance = create_server(port=0)
        thread = threading.Thread(target=instance.serve_forever)
        thread.start()
        results: list[list[dict]] = []
        errors: list[BaseException] = []

        def client() -> None:
            try:
                results.append(
                    post_check(
                        instance.url,
                        {
                            "csv": [str(data_files["nfl"])],
                            "article_path": str(data_files["nfl_article"]),
                        },
                    )
                )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        request_thread = threading.Thread(target=client)
        request_thread.start()
        time.sleep(0.05)  # let the cold request get in flight
        instance.shutdown_gracefully()  # must block until the stream is done
        thread.join(timeout=10)
        request_thread.join(timeout=10)
        assert not errors
        assert len(results) == 1
        events = results[0]
        assert events[0]["event"] == "start"
        assert events[-1]["event"] == "summary"
        assert events[-1]["claims"] == len(events) - 2

    def test_no_new_connections_after_shutdown(self, data_files):
        instance = create_server(port=0)
        thread = threading.Thread(target=instance.serve_forever)
        thread.start()
        url = instance.url
        assert get_json(url + "/health")["status"] == "ok"
        instance.shutdown_gracefully()
        thread.join(timeout=10)
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            get_json(url + "/health")


class TestServiceSurface:
    def test_health_and_stats_counters(self, server, data_files):
        payload = {
            "csv": [str(data_files["nfl"])],
            "article_path": str(data_files["nfl_article"]),
        }
        post_check(server.url, payload)
        post_check(server.url, payload)
        stats = get_json(server.url + "/stats")
        assert stats["status"] == "ok"
        assert stats["requests"] == 2
        assert stats["claims_served"] == 2 * stats["claims_from_cache"]
        engine = stats["engine"]
        assert engine["physical_queries"] > 0
        assert 0.0 <= engine["memory_cache_hit_rate"] <= 1.0
        incremental = stats["incremental"]
        assert incremental["enabled"] is True
        assert incremental["entries"] == stats["claims_from_cache"]
        assert incremental["hits"] == stats["claims_from_cache"]

    def test_error_statuses(self, server, data_files):
        def status_of(method, path, body=None, headers=None):
            request = urllib.request.Request(
                server.url + path, data=body, method=method,
                headers=headers or {},
            )
            try:
                with urllib.request.urlopen(request) as response:
                    return response.status
            except urllib.error.HTTPError as error:
                return error.code

        assert status_of("GET", "/nope") == 404
        assert status_of("POST", "/nope", b"{}") == 404
        assert status_of("POST", "/check", b"not json") == 400
        assert (
            status_of("POST", "/check", json.dumps({"article": "x"}).encode())
            == 400
        )
        missing = json.dumps(
            {"csv": ["/nonexistent/gone.csv"], "article": "Four things."}
        ).encode()
        assert status_of("POST", "/check", missing) == 422
        health = get_json(server.url + "/health")
        # Routing 404s are not client payload errors; the other three are.
        assert health["request_errors"] == 3

    def test_oversized_body_rejected_before_buffering(self, server):
        from repro.service.server import MAX_BODY_BYTES

        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(
                b"POST /check HTTP/1.1\r\nHost: localhost\r\n"
                b"Content-Length: " + str(MAX_BODY_BYTES + 1).encode()
                + b"\r\nConnection: close\r\n\r\n"
            )
            status_line = b""
            while not status_line.endswith(b"\r\n"):
                chunk = sock.recv(1)
                if not chunk:
                    break
                status_line += chunk
        assert b" 413 " in status_line

    def test_in_process_service_facade(self, data_files):
        service = VerificationService(AggCheckerConfig())
        events = service.check(
            CheckRequest(
                csv_paths=(str(data_files["nfl"]),),
                article=NFL_ARTICLE,
            )
        )
        assert events[0]["event"] == "start"
        assert events[-1]["event"] == "summary"
        assert service.requests == 1
