"""Property tests for the queue's delivery and durability invariants.

Hypothesis drives the three contracts the service core stands on:

- **Crash anywhere**: replaying *any* prefix of the journal (a crash can
  land between any two appended records) plus arbitrary re-delivery
  never double-acks a job and never resurrects an acked one.
- **Stream order**: a subscriber observes acks in global ack order —
  the HTTP layer's claim-event ordering guarantee is the queue's, not
  the handler's.
- **Idempotency**: resubmitting any multiset of keys executes each
  distinct key exactly once, and every subscriber of a key sees that
  key's single payload.

NumPy-free: runs on the no-NumPy CI leg.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.harness.parallel import RetryPolicy
from repro.service.queue import JOURNAL_NAME, DurableJobQueue


def submit(queue, key, group="g", index=0, subscriber=None):
    return queue.submit(
        key=key,
        group=group,
        index=index,
        scope="scope",
        source={"article": "text", "title": "t"},
        claim_fp=key,
        subscriber=subscriber,
    )


def drain_all(queue, worker="w"):
    """Lease and ack everything leasable; returns acked job keys."""
    acked = []
    while True:
        batch = queue.lease_group(worker, visibility_timeout=30.0)
        if not batch:
            return acked
        for job in batch:
            if queue.ack(job.id, {"status": "verified", "key": job.key}):
                acked.append(job.key)


@settings(max_examples=40, deadline=None)
@given(
    n_jobs=st.integers(min_value=1, max_value=5),
    ack_mask=st.lists(st.booleans(), min_size=5, max_size=5),
)
def test_any_journal_prefix_replays_consistently(n_jobs, ack_mask):
    """Cut the journal after every record; each prefix must be sane."""
    with tempfile.TemporaryDirectory() as tmp:
        queue = DurableJobQueue(tmp, retry=RetryPolicy(max_attempts=2))
        jobs = [
            submit(queue, f"k{i}", group=f"g{i % 2}", index=i)[0]
            for i in range(n_jobs)
        ]
        leased = {
            job.id
            for batch in iter(
                lambda: queue.lease_group("w", visibility_timeout=30.0), []
            )
            for job in batch
        }
        assert leased == {job.id for job in jobs}
        acked_keys = set()
        for job, ack in zip(jobs, ack_mask):
            if ack:
                queue.ack(job.id, {"status": "verified", "key": job.key})
                acked_keys.add(job.key)
        # Simulate a crash: no drain, no close, no compaction.
        lines = (Path(tmp) / JOURNAL_NAME).read_bytes().splitlines(True)
        key_of = {job.id: job.key for job in jobs}

        for cut in range(len(lines) + 1):
            prefix = lines[:cut]
            acked_in_prefix = {
                key_of[record["id"]]
                for record in map(json.loads, prefix)
                if record.get("op") == "ack"
            }
            put_in_prefix = {
                record["job"]["key"]
                for record in map(json.loads, prefix)
                if record.get("op") == "put"
            }
            with tempfile.TemporaryDirectory() as replay_dir:
                (Path(replay_dir) / JOURNAL_NAME).write_bytes(
                    b"".join(prefix)
                )
                replayed = DurableJobQueue(replay_dir)
                # Replay partitions journaled jobs into acked-in-prefix
                # (answer immediately, never re-deliver) and unacked
                # (re-deliver exactly once). No key appears twice.
                pending = [job.key for job in replayed.pending_jobs()]
                assert len(set(pending)) == len(pending)
                redelivered = drain_all(replayed)
                assert sorted(redelivered) == sorted(pending)
                assert set(redelivered) == put_in_prefix - acked_in_prefix
                for key in acked_in_prefix:
                    job, payload = submit(replayed, key)
                    # Answered from the journaled ack — the original
                    # payload, with no re-execution.
                    assert payload is not None and payload["key"] == key
                # Never double-acked: each live job acked exactly once,
                # no duplicates anywhere in this queue's lifetime.
                stats = replayed.stats()
                assert stats["acked"] == len(redelivered)
                assert stats["duplicate_acks"] == 0
                replayed.close()
        queue.close()


@settings(max_examples=40, deadline=None)
@given(order=st.permutations(list(range(6))))
def test_subscriber_stream_follows_global_ack_order(order):
    queue = DurableJobQueue()
    observed = []

    def subscriber(kind, job, payload):
        observed.append(job.key)

    jobs = [
        submit(queue, f"k{i}", group=f"g{i}", index=0, subscriber=subscriber)[0]
        for i in range(6)
    ]
    for batch in iter(
        lambda: queue.lease_group("w", visibility_timeout=30.0), []
    ):
        pass
    for position in order:
        queue.ack(jobs[position].id, {"status": "verified"})
    assert observed == [f"k{position}" for position in order]


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(
        st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=12
    )
)
def test_idempotency_keys_dedupe_resubmissions(keys):
    queue = DurableJobQueue()
    received: dict[int, list] = {}
    pending_subscribers = 0
    for ordinal, key in enumerate(keys):
        inbox: list = []
        received[ordinal] = inbox
        job, payload = submit(
            queue,
            key,
            group=key,
            index=0,
            subscriber=lambda kind, job, p, inbox=inbox: inbox.append(p),
        )
        if payload is not None:
            # Already completed before this submission — delivered inline.
            inbox.append(payload)
        else:
            pending_subscribers += 1
        if ordinal == len(keys) // 2:
            drain_all(queue)
    drain_all(queue)
    # One execution per distinct key, ever.
    assert queue.stats()["enqueued"] == len(set(keys))
    assert queue.stats()["deduped"] == len(keys) - len(set(keys))
    # Every submission got exactly one result, and all submissions of a
    # key got the same payload.
    by_key: dict[str, dict] = {}
    for ordinal, key in enumerate(keys):
        assert len(received[ordinal]) == 1
        payload = received[ordinal][0]
        assert payload["key"] == key
        assert by_key.setdefault(key, payload) == payload


@settings(max_examples=20, deadline=None)
@given(late_ack_first=st.booleans())
def test_redelivery_plus_duplicate_ack_notifies_exactly_once(late_ack_first):
    """A worker presumed dead acks late: the subscriber hears one result."""
    queue = DurableJobQueue(retry=RetryPolicy(max_attempts=5, backoff_base=0.0, backoff_cap=0.0))
    inbox: list = []
    job, _ = submit(
        queue, "k", subscriber=lambda kind, j, p: inbox.append((kind, p))
    )
    first = queue.lease_group("w1", visibility_timeout=0.0)
    assert first
    assert queue.expire_leases() == 1
    second = queue.lease_group("w2", visibility_timeout=30.0)
    assert [j.id for j in second] == [job.id]
    acks = [("w1", {"status": "verified", "by": "w1"}),
            ("w2", {"status": "verified", "by": "w2"})]
    if late_ack_first:
        acks.reverse()
    results = [queue.ack(job.id, payload) for _, payload in acks]
    assert results == [True, False]
    assert len(inbox) == 1
    assert inbox[0] == ("ack", acks[0][1])
    assert queue.stats()["duplicate_acks"] == 1
