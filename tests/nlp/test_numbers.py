"""Unit and property tests for numeral understanding and rounding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.numbers import (
    extract_number_mentions,
    round_to_significant,
    rounds_to,
)
from repro.nlp.tokens import tokenize_with_punct


def mentions(text):
    return extract_number_mentions(tokenize_with_punct(text))


class TestExtractDigits:
    def test_plain_integer(self):
        found = mentions("they gave money to 63 candidates")
        assert len(found) == 1
        assert found[0].value == 63

    def test_thousands_separator(self):
        assert mentions("about 1,234 rows")[0].value == 1234

    def test_decimal(self):
        assert mentions("an average of 3.5 goals")[0].value == 3.5

    def test_percent_sign(self):
        found = mentions("13% of respondents")[0]
        assert found.value == 13 and found.is_percentage

    def test_percent_word(self):
        found = mentions("13 percent of respondents")[0]
        assert found.value == 13 and found.is_percentage

    def test_magnitude(self):
        assert mentions("nearly 1.2 million users")[0].value == 1_200_000

    def test_year_flagged(self):
        found = mentions("back in 2014 the rule changed")[0]
        assert found.is_year_like

    def test_four_digit_count_with_comma_not_year(self):
        found = mentions("there were 2,014 incidents")[0]
        assert found.value == 2014 and not found.is_year_like

    def test_multiple_numbers(self):
        found = mentions("three were for abuse, one was for gambling, 2 more")
        assert [m.value for m in found] == [3, 1, 2]


class TestExtractSpelled:
    def test_simple_word(self):
        found = mentions("there were only four previous lifetime bans")
        assert found[0].value == 4 and found[0].is_spelled

    def test_compound(self):
        assert mentions("twenty three players left")[0].value == 23

    def test_hyphenated_compound(self):
        assert mentions("twenty-three players left")[0].value == 23

    def test_scales(self):
        assert mentions("two hundred people answered")[0].value == 200
        assert mentions("three million dollars raised")[0].value == 3_000_000

    def test_spelled_percent(self):
        found = mentions("ten percent of games")[0]
        assert found.value == 10 and found.is_percentage

    def test_ordinals_flagged(self):
        found = mentions("the third season was the best")
        assert found[0].is_ordinal and found[0].value == 3

    def test_digit_ordinal_flagged(self):
        found = mentions("ranked 4th overall")
        assert found[0].is_ordinal

    def test_no_numbers(self):
        assert mentions("no numerals appear here") == []


class TestRoundsTo:
    def test_exact(self):
        assert rounds_to(4, 4)

    def test_rounding_up(self):
        assert rounds_to(13.64, 14)

    def test_paper_rounding_error_detected(self):
        # The Stack Overflow claim: 13% claimed, true value ~13.64 -> 14.
        assert not rounds_to(13.64, 13)

    def test_one_significant_digit(self):
        assert rounds_to(38.7, 40)

    def test_two_significant_digits(self):
        assert rounds_to(63.2, 63)

    def test_fraction(self):
        assert rounds_to(0.347, 0.3)
        assert rounds_to(0.347, 0.35)

    def test_negative(self):
        assert rounds_to(-13.64, -14)
        assert not rounds_to(-13.64, 13.64)

    def test_null_result(self):
        assert not rounds_to(None, 4)

    def test_non_numeric_result(self):
        assert not rounds_to("four", 4)  # type: ignore[arg-type]

    def test_nan_result(self):
        assert not rounds_to(float("nan"), 4)

    def test_zero(self):
        assert rounds_to(0, 0)
        assert not rounds_to(0, 1)


class TestRoundToSignificant:
    @pytest.mark.parametrize(
        "value,digits,expected",
        [
            (13.64, 1, 10.0),
            (13.64, 2, 14.0),
            (13.64, 3, 13.6),
            (0.00347, 2, 0.0035),
            (98765, 2, 99000),
            (-13.64, 2, -14.0),
            (0, 3, 0.0),
        ],
    )
    def test_cases(self, value, digits, expected):
        assert round_to_significant(value, digits) == pytest.approx(expected)

    def test_invalid_digits(self):
        with pytest.raises(ValueError):
            round_to_significant(1.0, 0)


@settings(max_examples=100, deadline=None)
@given(
    value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    digits=st.integers(min_value=1, max_value=10),
)
def test_rounding_is_admissible(value, digits):
    """Property: every significant-digit rounding of x is accepted for x."""
    rounded = round_to_significant(value, digits)
    assert rounds_to(value, rounded)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=999))
def test_spelled_numbers_roundtrip(number):
    """Property: spelled-out integers parse back to their value."""
    words = _spell(number)
    found = mentions(f"there were {words} things")
    assert found, words
    assert found[0].value == number


def _spell(number: int) -> str:
    units = [
        "zero", "one", "two", "three", "four", "five", "six", "seven",
        "eight", "nine", "ten", "eleven", "twelve", "thirteen", "fourteen",
        "fifteen", "sixteen", "seventeen", "eighteen", "nineteen",
    ]
    tens = [
        "", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy",
        "eighty", "ninety",
    ]
    if number < 20:
        return units[number]
    if number < 100:
        ten, unit = divmod(number, 10)
        return tens[ten] + ("" if unit == 0 else f"-{units[unit]}")
    hundred, rest = divmod(number, 100)
    text = f"{units[hundred]} hundred"
    if rest:
        text += f" and {_spell(rest)}"
    return text
