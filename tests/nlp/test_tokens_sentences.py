"""Unit tests for tokenization and sentence splitting."""

from __future__ import annotations

from repro.nlp.sentences import split_sentences
from repro.nlp.tokens import tokenize_with_punct


class TestTokenize:
    def test_words_and_punct(self):
        tokens = tokenize_with_punct("three were for abuse, one for gambling.")
        texts = [t.text for t in tokens]
        assert "," in texts and "." in texts
        assert texts[0] == "three"

    def test_indices_sequential(self):
        tokens = tokenize_with_punct("a b c")
        assert [t.index for t in tokens] == [0, 1, 2]

    def test_number_with_percent(self):
        tokens = tokenize_with_punct("13% of devs")
        assert tokens[0].text == "13%"
        assert tokens[0].is_number_like

    def test_number_with_comma(self):
        tokens = tokenize_with_punct("1,234 rows")
        assert tokens[0].text == "1,234"

    def test_contraction(self):
        tokens = tokenize_with_punct("i'm self-taught")
        assert tokens[0].text == "i'm"

    def test_dash_is_punctuation(self):
        tokens = tokenize_with_punct("bans - three were")
        assert any(t.text == "-" and t.is_punctuation for t in tokens)

    def test_word_properties(self):
        token = tokenize_with_punct("Games")[0]
        assert token.is_word and not token.is_punctuation
        assert token.lower == "games"


class TestSplitSentences:
    def test_basic(self):
        text = "First sentence. Second sentence! Third one?"
        assert len(split_sentences(text)) == 3

    def test_abbreviations_protected(self):
        text = "Mr. Smith visited. He left."
        sentences = split_sentences(text)
        assert len(sentences) == 2
        assert sentences[0] == "Mr. Smith visited."

    def test_decimals_protected(self):
        text = "The average was 3.5 goals. That is high."
        assert len(split_sentences(text)) == 2

    def test_initials_protected(self):
        assert len(split_sentences("J. Doe won. K. Roe lost.")) == 2

    def test_whitespace_normalized(self):
        sentences = split_sentences("One   sentence\nacross lines. Two.")
        assert sentences[0] == "One sentence across lines."

    def test_empty(self):
        assert split_sentences("") == []

    def test_no_terminal_punctuation(self):
        assert split_sentences("headline without period") == [
            "headline without period"
        ]
