"""Unit tests for the synonym lexicon and identifier decomposition."""

from __future__ import annotations

from repro.nlp.decompose import decompose_identifier
from repro.nlp.wordnet import expand_keywords, synonyms, vocabulary


class TestSynonyms:
    def test_symmetric_groups(self):
        assert "pay" in synonyms("salary")
        assert "salary" in synonyms("pay")

    def test_word_not_its_own_synonym(self):
        assert "salary" not in synonyms("salary")

    def test_unknown_word(self):
        assert synonyms("zyzzyva") == set()

    def test_case_insensitive(self):
        assert synonyms("Salary") == synonyms("salary")

    def test_aggregation_vocabulary(self):
        assert "number" in synonyms("count")
        assert "mean" in synonyms("average")
        assert "share" in synonyms("percentage")

    def test_domain_terms(self):
        assert "suspension" in synonyms("ban")
        assert "permanent" in synonyms("lifetime")

    def test_expand_keywords(self):
        expanded = expand_keywords({"salary"})
        assert {"salary", "pay", "wage"} <= expanded

    def test_vocabulary_nonempty(self):
        assert len(vocabulary()) > 200


class TestDecompose:
    def test_snake_case(self):
        assert decompose_identifier("avg_salary") == ["avg", "salary"]

    def test_camel_case(self):
        assert decompose_identifier("YearsExperience") == ["years", "experience"]

    def test_acronym_boundary(self):
        assert decompose_identifier("NFLSuspensions") == ["nfl", "suspensions"]

    def test_concatenation_split(self):
        assert decompose_identifier("nflsuspensions") == ["nfl", "suspensions"]

    def test_digits_separated(self):
        assert decompose_identifier("stackoverflow2016") == [
            "stack",
            "overflow",
            "2016",
        ]

    def test_unsplittable_kept_whole(self):
        assert decompose_identifier("qxzzk") == ["qxzzk"]

    def test_spaces_and_dashes(self):
        assert decompose_identifier("per-game total") == ["per", "game", "total"]

    def test_short_identifier(self):
        assert decompose_identifier("id") == ["id"]

    def test_empty(self):
        assert decompose_identifier("") == []
