"""Unit tests for the heuristic dependency tree (TreeDistance)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.dependency import build_dependency_tree
from repro.nlp.tokens import tokenize_with_punct


def tree_for(text):
    tokens = tokenize_with_punct(text)
    return tokens, build_dependency_tree(tokens)


def index_of(tokens, word):
    return next(t.index for t in tokens if t.lower == word)


class TestPaperExample:
    """Paper Example 3: 'three were for repeated substance abuse, one was
    for gambling' with distances three->gambling = 2, one->gambling = 1."""

    SENTENCE = "three were for repeated substance abuse, one was for gambling"

    def test_one_to_gambling_is_one(self):
        tokens, tree = tree_for(self.SENTENCE)
        assert tree.distance(index_of(tokens, "one"), index_of(tokens, "gambling")) == 1

    def test_three_to_gambling_is_two(self):
        tokens, tree = tree_for(self.SENTENCE)
        assert (
            tree.distance(index_of(tokens, "three"), index_of(tokens, "gambling"))
            == 2
        )

    def test_three_to_abuse_is_one(self):
        tokens, tree = tree_for(self.SENTENCE)
        assert tree.distance(index_of(tokens, "three"), index_of(tokens, "abuse")) == 1

    def test_closer_keyword_wins(self):
        tokens, tree = tree_for(self.SENTENCE)
        one = index_of(tokens, "one")
        three = index_of(tokens, "three")
        gambling = index_of(tokens, "gambling")
        assert tree.distance(one, gambling) < tree.distance(three, gambling)


class TestTreeProperties:
    def test_distance_zero_to_self(self):
        tokens, tree = tree_for("four lifetime bans in the database")
        assert tree.distance(0, 0) == 0

    def test_same_chunk_non_heads(self):
        tokens, tree = tree_for("four previous lifetime bans existed")
        four = index_of(tokens, "four")
        previous = index_of(tokens, "previous")
        # Both attach to the chunk head, so they are two hops apart.
        assert tree.distance(four, previous) == 2

    def test_chunking_on_dash(self):
        tokens, tree = tree_for("only four bans - three for abuse")
        four = index_of(tokens, "four")
        three = index_of(tokens, "three")
        assert tree.chunk_of(four) != tree.chunk_of(three)

    def test_chunking_on_and(self):
        tokens, tree = tree_for("two wins at home and three losses away")
        assert tree.chunk_of(index_of(tokens, "wins")) != tree.chunk_of(
            index_of(tokens, "losses")
        )

    def test_head_is_last_content_word(self):
        tokens, tree = tree_for("one was for gambling")
        assert tree.is_head(index_of(tokens, "gambling"))

    def test_single_token_sentence(self):
        tokens, tree = tree_for("four")
        assert tree.distance(0, 0) == 0

    def test_punctuation_only_ending(self):
        tokens, tree = tree_for("four bans.")
        four = index_of(tokens, "four")
        bans = index_of(tokens, "bans")
        assert tree.distance(four, bans) == 1


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.sampled_from(["alpha", "beta", "gamma", ",", "delta", "and", "five"]),
        min_size=1,
        max_size=12,
    )
)
def test_distance_is_a_metric(words):
    """Property: symmetry and triangle inequality hold for all pairs."""
    tokens = tokenize_with_punct(" ".join(words))
    if not tokens:
        return
    tree = build_dependency_tree(tokens)
    n = len(tokens)
    for i in range(n):
        assert tree.distance(i, i) == 0
        for j in range(n):
            assert tree.distance(i, j) == tree.distance(j, i)
            assert tree.distance(i, j) >= (0 if i == j else 1)
            for k in range(n):
                assert (
                    tree.distance(i, k)
                    <= tree.distance(i, j) + tree.distance(j, k)
                )
