"""Unit tests for the interactive verification session."""

from __future__ import annotations

import pytest

from repro.core import AggChecker
from repro.core.interactive import ResolutionFeature
from repro.db import Column, ColumnType, Database, Table, parse_query
from repro.errors import CheckerError

from tests.conftest import NFL_ROWS

PAPER_HTML = """
<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"""


@pytest.fixture()
def checker():
    table = Table(
        "nflsuspensions",
        [
            Column("Name"),
            Column("Team"),
            Column("Games"),
            Column("Category"),
            Column("Year", ColumnType.NUMERIC),
        ],
        NFL_ROWS,
    )
    return AggChecker(Database("nfl", [table]))


@pytest.fixture()
def session(checker):
    report = checker.check_html(PAPER_HTML)
    return checker.interactive(report)


class TestSuggestions:
    def test_topk_with_descriptions(self, session):
        claim = session.report.claims[0]
        suggestions = session.suggestions(claim, k=5)
        assert len(suggestions) == 5
        query, description, probability = suggestions[0]
        assert "number of rows" in description
        assert 0 < probability <= 1

    def test_pending_initially_all(self, session):
        assert len(session.pending()) == 3


class TestResolution:
    def test_accept_top(self, session):
        claim = session.report.claims[0]
        resolution = session.accept_top(claim)
        assert resolution.feature is ResolutionFeature.TOP_1
        assert resolution.feature.clicks == 1
        assert resolution.claim_is_correct
        assert len(session.pending()) == 2

    def test_select_rank_feature_boundaries(self, session):
        claim = session.report.claims[1]
        assert (
            session.select_rank(claim, 3).feature is ResolutionFeature.TOP_5
        )
        assert (
            session.select_rank(claim, 7).feature is ResolutionFeature.TOP_10
        )

    def test_select_rank_out_of_range(self, session):
        claim = session.report.claims[0]
        with pytest.raises(CheckerError):
            session.select_rank(claim, 10**9)

    def test_custom_query_evaluated_by_engine(self, checker, session):
        claim = session.report.claims[0]
        query = parse_query(
            "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'",
            checker.database,
        )
        resolution = session.set_custom(claim, query)
        assert resolution.feature is ResolutionFeature.CUSTOM
        assert resolution.result == 4
        assert resolution.claim_is_correct

    def test_custom_query_detects_error(self, checker, session):
        claim = session.report.claims[0]  # claims 'four'
        query = parse_query(
            "SELECT Count(*) FROM nflsuspensions WHERE Games = '16'",
            checker.database,
        )
        resolution = session.set_custom(claim, query)
        assert resolution.result == 4  # four 16-game suspensions
        assert resolution.claim_is_correct  # coincidentally matches

    def test_resolution_recorded_once_per_claim(self, session):
        claim = session.report.claims[0]
        session.accept_top(claim)
        session.select_rank(claim, 2)
        assert len(session.resolutions()) == 1

    def test_custom_without_engine_raises(self, checker):
        from repro.core import InteractiveSession

        report = checker.check_html(PAPER_HTML)
        session = InteractiveSession(report)  # no engine attached
        query = parse_query(
            "SELECT Sum(Year) FROM nflsuspensions WHERE Team = 'ZZZ'",
            checker.database,
        )
        with pytest.raises(CheckerError):
            session.set_custom(report.claims[0], query)
