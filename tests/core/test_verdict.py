"""Unit tests for verdict derivation and markup rendering."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")  # the model layer has no pure-Python fallback

from repro.core.verdict import VerdictStatus, make_verdict, render_markup
from repro.db import AggregateFunction, AggregateSpec, STAR
from repro.db.query import SimpleAggregateQuery
from repro.model.candidates import CandidateSpace
from repro.model.probability import EvaluationOutcome, compute_distribution
from repro.text import Document, detect_claims


def make_space(claim, queries):
    """A minimal candidate space with uniform keyword scores."""
    from repro.fragments.fragments import ColumnFragment, FunctionFragment

    space = CandidateSpace(
        claim=claim,
        functions=[FunctionFragment(function=AggregateFunction.COUNT)],
        columns=[ColumnFragment()],
        subsets=[()],
        fn_keyword_log=np.zeros(1),
        col_keyword_log=np.zeros(1),
        subset_keyword_log=np.zeros(1),
    )
    space.queries = queries
    n = len(queries)
    space.fn_index = np.zeros(n, dtype=np.int32)
    space.col_index = np.zeros(n, dtype=np.int32)
    space.subset_index = np.zeros(n, dtype=np.int32)
    return space


@pytest.fixture()
def claim():
    document = Document.from_plain_text("T", ["There were 4 bans."])
    return detect_claims(document)[0]


COUNT_STAR = SimpleAggregateQuery(AggregateSpec(AggregateFunction.COUNT, STAR))


class TestMakeVerdict:
    def test_verified_when_top_matches(self, claim):
        space = make_space(claim, [COUNT_STAR])
        outcome = EvaluationOutcome.from_results(space, {COUNT_STAR: 4})
        distribution = compute_distribution(space, None, outcome)
        verdict = make_verdict(claim, distribution)
        assert verdict.status is VerdictStatus.VERIFIED
        assert verdict.top_result == 4

    def test_erroneous_when_top_mismatches(self, claim):
        space = make_space(claim, [COUNT_STAR])
        outcome = EvaluationOutcome.from_results(space, {COUNT_STAR: 9})
        distribution = compute_distribution(space, None, outcome)
        verdict = make_verdict(claim, distribution)
        assert verdict.status is VerdictStatus.ERRONEOUS

    def test_rounding_admissible(self, claim):
        # 3.64 claimed as 4 (1 significant digit): verified.
        space = make_space(claim, [COUNT_STAR])
        outcome = EvaluationOutcome.from_results(space, {COUNT_STAR: 3.64})
        distribution = compute_distribution(space, None, outcome)
        assert make_verdict(claim, distribution).status is VerdictStatus.VERIFIED

    def test_unresolved_without_candidates(self, claim):
        space = make_space(claim, [])
        distribution = compute_distribution(space, None, None)
        verdict = make_verdict(claim, distribution)
        assert verdict.status is VerdictStatus.UNRESOLVED
        assert verdict.status.flagged

    def test_unresolved_without_evaluations(self, claim):
        space = make_space(claim, [COUNT_STAR])
        distribution = compute_distribution(space, None, None)
        verdict = make_verdict(claim, distribution)
        assert verdict.status is VerdictStatus.UNRESOLVED

    def test_hover_text(self, claim):
        space = make_space(claim, [COUNT_STAR])
        outcome = EvaluationOutcome.from_results(space, {COUNT_STAR: 4})
        verdict = make_verdict(
            claim, compute_distribution(space, None, outcome)
        )
        assert verdict.hover_text == "the number of rows = 4"


class TestRenderMarkup:
    def _verdict(self, claim, result):
        space = make_space(claim, [COUNT_STAR])
        outcome = EvaluationOutcome.from_results(space, {COUNT_STAR: result})
        return make_verdict(claim, compute_distribution(space, None, outcome))

    def test_ok_marker(self, claim):
        markup = render_markup([self._verdict(claim, 4)])
        assert markup.startswith("[OK 4]")

    def test_err_marker_shows_actual(self, claim):
        markup = render_markup([self._verdict(claim, 9)])
        assert markup.startswith("[ERR 4 -> 9]")

    def test_unresolved_marker(self, claim):
        space = make_space(claim, [])
        verdict = make_verdict(claim, compute_distribution(space, None, None))
        assert render_markup([verdict]).startswith("[? 4]")

    def test_one_line_per_claim(self, claim):
        verdicts = [self._verdict(claim, 4), self._verdict(claim, 9)]
        assert render_markup(verdicts).count("\n") == 1
