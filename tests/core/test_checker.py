"""End-to-end tests for the AggChecker pipeline on the paper's example."""

from __future__ import annotations

import pytest

from repro.core import AggChecker, VerdictStatus, render_markup
from repro.db import Column, ColumnType, Database, EngineConfig, ExecutionMode, Table
from repro.core.config import AggCheckerConfig

from tests.conftest import NFL_ROWS

PAPER_HTML = """
<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"""

# The same article with a wrong count (the paper's Table 9 scenario: stale
# text after a data update). "eight" matches no aggregate of the fixture
# data even coincidentally ("seven" would: CountDistinct(Year) = 7 — the
# kind of spurious match behind the paper's 36% precision).
ERRONEOUS_HTML = PAPER_HTML.replace("only four previous", "only eight previous")


def build_db() -> Database:
    table = Table(
        "nflsuspensions",
        [
            Column("Name"),
            Column("Team"),
            Column("Games"),
            Column("Category"),
            Column("Year", ColumnType.NUMERIC),
        ],
        NFL_ROWS,
    )
    return Database("nfl", [table])


@pytest.fixture(scope="module")
def checker() -> AggChecker:
    return AggChecker(build_db())


@pytest.fixture(scope="module")
def report(checker):
    return checker.check_html(PAPER_HTML)


class TestPaperExample:
    def test_three_claims_detected(self, report):
        assert [c.claimed_value for c in report.claims] == [4, 3, 1]

    def test_all_claims_verified(self, report):
        statuses = [v.status for v in report.verdicts]
        assert statuses == [VerdictStatus.VERIFIED] * 3

    def test_lifetime_bans_resolved_via_abbreviation(self, report):
        verdict = report.verdicts[0]
        assert verdict.top_query is not None
        predicates = verdict.top_query.all_predicates
        assert any(
            p.column.column == "Games" and p.value == "indef" for p in predicates
        )
        assert verdict.top_result == 4

    def test_probability_correct_high(self, report):
        for verdict in report.verdicts:
            assert verdict.probability_correct > 0.9

    def test_engine_shared_work(self, report):
        stats = report.engine_stats
        assert stats.queries_requested > 1000
        assert stats.physical_queries < 50

    def test_markup(self, report):
        markup = render_markup(report.verdicts)
        assert "[OK four]" in markup
        assert "[OK one]" in markup

    def test_hover_text(self, report):
        assert "= 4" in report.verdicts[0].hover_text

    def test_report_accessors(self, report):
        assert report.flagged_claims() == []
        assert report.verdict_for(report.claims[0]) is report.verdicts[0]
        with pytest.raises(KeyError):
            report.verdict_for(object())

    def test_total_seconds_positive(self, report):
        assert report.total_seconds > 0


class TestErroneousClaim:
    def test_wrong_count_flagged(self, checker):
        report = checker.check_html(ERRONEOUS_HTML)
        verdict = report.verdicts[0]
        assert verdict.claim.claimed_value == 8
        assert verdict.status is VerdictStatus.ERRONEOUS
        markup = render_markup(report.verdicts)
        assert "[ERR eight ->" in markup

    def test_correct_claims_unaffected(self, checker):
        report = checker.check_html(ERRONEOUS_HTML)
        assert report.verdicts[1].status is VerdictStatus.VERIFIED
        assert report.verdicts[2].status is VerdictStatus.VERIFIED


class TestConfigurations:
    def test_naive_mode_same_verdicts(self):
        config = AggCheckerConfig(engine=EngineConfig(mode=ExecutionMode.NAIVE))
        checker = AggChecker(build_db(), config)
        report = checker.check_html(PAPER_HTML)
        assert [v.status for v in report.verdicts] == [VerdictStatus.VERIFIED] * 3

    def test_check_text_entrypoint(self, checker):
        report = checker.check_text(
            "NFL", ["There were 9 suspensions in the data."]
        )
        assert len(report.claims) == 1
        assert report.verdicts[0].status is VerdictStatus.VERIFIED

    def test_no_evaluations_gives_unresolved(self):
        config = AggCheckerConfig().with_em(use_evaluations=False)
        checker = AggChecker(build_db(), config)
        report = checker.check_html(PAPER_HTML)
        assert all(
            v.status is VerdictStatus.UNRESOLVED for v in report.verdicts
        )

    def test_data_dictionary_accepted(self):
        checker = AggChecker(
            build_db(),
            data_dictionary={"Games": "suspension length in games"},
        )
        report = checker.check_html(PAPER_HTML)
        assert len(report.claims) == 3
