"""Unit and property tests for indexing and weighted TF-IDF search."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Analyzer, InvertedIndex, search


@pytest.fixture()
def fragment_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add("pred:games=indef", text="games indef lifetime ban")
    index.add("pred:category=gambling", text="category gambling bet")
    index.add(
        "pred:category=substance",
        text="category substance abuse repeated offense drug",
    )
    index.add("agg:count", text="count number total how many")
    index.add("agg:sum", text="sum total amount")
    return index


class TestIndex:
    def test_add_and_payload(self, fragment_index):
        assert len(fragment_index) == 5
        assert fragment_index.payload(0) == "pred:games=indef"

    def test_document_frequency_uses_analyzed_terms(self, fragment_index):
        # 'total' appears in two documents.
        term = fragment_index.analyzer.term("total")
        assert fragment_index.document_frequency(term) == 2

    def test_idf_decreases_with_frequency(self, fragment_index):
        analyzer = fragment_index.analyzer
        rare = fragment_index.idf(analyzer.term("gambling"))
        common = fragment_index.idf(analyzer.term("total"))
        assert rare > common

    def test_norm_shorter_documents_higher(self, fragment_index):
        assert fragment_index.norm(4) > fragment_index.norm(2)

    def test_tokens_and_text_combined(self):
        index = InvertedIndex()
        index.add("x", text="alpha", tokens=["beta"])
        hits = search(index, {"beta": 1.0})
        assert hits and hits[0].payload == "x"


class TestSearch:
    def test_exact_keyword_ranks_first(self, fragment_index):
        hits = search(fragment_index, {"gambling": 1.0})
        assert hits[0].payload == "pred:category=gambling"

    def test_morphology_matches(self, fragment_index):
        # 'bans' stems to 'ban' which matches the 'lifetime ban' fragment.
        hits = search(fragment_index, {"bans": 1.0})
        assert hits[0].payload == "pred:games=indef"

    def test_weights_change_ranking(self, fragment_index):
        low = search(fragment_index, {"gambling": 0.1, "substance": 1.0})
        high = search(fragment_index, {"gambling": 1.0, "substance": 0.1})
        assert low[0].payload == "pred:category=substance"
        assert high[0].payload == "pred:category=gambling"

    def test_top_k_limits(self, fragment_index):
        hits = search(fragment_index, {"category": 1.0, "total": 1.0}, top_k=2)
        assert len(hits) == 2

    def test_stopwords_ignored(self, fragment_index):
        assert search(fragment_index, {"the": 1.0}) == []

    def test_zero_weights_ignored(self, fragment_index):
        assert search(fragment_index, {"gambling": 0.0}) == []

    def test_empty_query(self, fragment_index):
        assert search(fragment_index, {}) == []

    def test_scores_sorted_descending(self, fragment_index):
        hits = search(fragment_index, {"category": 1.0, "gambling": 1.0})
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)


@settings(max_examples=50, deadline=None)
@given(
    weight=st.floats(min_value=0.01, max_value=100.0),
    scale=st.floats(min_value=1.5, max_value=10.0),
)
def test_score_scales_linearly_with_term_weight(weight, scale):
    """Property: scaling one term's weight scales its hits' scores."""
    index = InvertedIndex()
    index.add("a", text="gambling bet")
    index.add("b", text="substance abuse")
    base = search(index, {"gambling": weight})
    scaled = search(index, {"gambling": weight * scale})
    assert base[0].payload == scaled[0].payload == "a"
    assert scaled[0].score == pytest.approx(base[0].score * scale)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["red", "green", "blue", "cyan"]), min_size=1, max_size=6))
def test_matching_document_always_retrieved(words):
    """Property: a document containing a queried term is always a hit."""
    index = InvertedIndex(Analyzer(stem=False))
    index.add("target", tokens=words)
    index.add("noise", tokens=["yellow", "magenta"])
    hits = search(index, {words[0]: 1.0})
    assert any(hit.payload == "target" for hit in hits)
