"""Unit tests for the Porter stemmer against reference examples."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.stemmer import porter_stem

# Reference pairs from Porter's original paper and the canonical test set.
REFERENCE = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("digitizer", "digit"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", REFERENCE)
def test_reference_pairs(word, expected):
    assert porter_stem(word) == expected


def test_short_words_unchanged():
    assert porter_stem("a") == "a"
    assert porter_stem("be") == "be"


def test_domain_words_collide_correctly():
    # Claim text and column names must stem to the same term.
    assert porter_stem("suspensions") == porter_stem("suspension")
    assert porter_stem("banned") == porter_stem("ban")
    assert porter_stem("respondents") == porter_stem("respondent")
    assert porter_stem("salaries") == porter_stem("salari")


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=0, max_size=15))
def test_stemmer_total_and_idempotent_on_output_length(word):
    stem = porter_stem(word)
    assert isinstance(stem, str)
    assert len(stem) <= len(word) + 1  # step 1b can append 'e'
