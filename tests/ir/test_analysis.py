"""Unit tests for the analysis pipeline."""

from __future__ import annotations

from repro.ir.analysis import Analyzer, STOPWORDS, tokenize


class TestTokenize:
    def test_basic(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_numbers_kept(self):
        assert tokenize("13% of 392 claims") == ["13", "of", "392", "claims"]

    def test_contractions(self):
        assert tokenize("i'm self-taught") == ["i'm", "self", "taught"]

    def test_empty(self):
        assert tokenize("") == []

    def test_identifier_like(self):
        assert tokenize("substance abuse, repeated offense") == [
            "substance",
            "abuse",
            "repeated",
            "offense",
        ]


class TestAnalyzer:
    def test_stopwords_removed(self):
        analyzer = Analyzer()
        assert analyzer.analyze("the number of games") == ["number", "game"]

    def test_stemming_applied(self):
        analyzer = Analyzer()
        assert analyzer.analyze("suspensions") == ["suspens"]

    def test_stemming_disabled(self):
        analyzer = Analyzer(stem=False)
        assert analyzer.analyze("suspensions") == ["suspensions"]

    def test_keep_stopwords(self):
        analyzer = Analyzer(keep_stopwords=True, stem=False)
        assert "the" in analyzer.analyze("the games")

    def test_term_single(self):
        analyzer = Analyzer()
        assert analyzer.term("The") is None
        assert analyzer.term("Games") == "game"

    def test_analyze_tokens(self):
        analyzer = Analyzer()
        assert analyzer.analyze_tokens(["games", "the", "banned"]) == [
            "game",
            "ban",
        ]

    def test_cache_consistency(self):
        analyzer = Analyzer()
        first = analyzer.term("suspensions")
        second = analyzer.term("suspensions")
        assert first == second == "suspens"

    def test_stopword_list_is_lowercase(self):
        assert all(word == word.lower() for word in STOPWORDS)
