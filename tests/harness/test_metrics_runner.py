"""Unit and integration tests for metrics and the corpus runner."""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, generate_corpus, nfl_suspensions_case
from repro.harness import aggregate_metrics, run_case, run_corpus
from repro.harness.ablations import (
    hits_ladder,
    keyword_context_ladder,
    model_ladder,
    pt_ladder,
)
from repro.harness.reporting import format_series, format_table, percent


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(n_articles=6, seed=77))


@pytest.fixture(scope="module")
def run(corpus):
    return run_corpus(corpus)


class TestRunCase:
    def test_builtin_case_resolves(self):
        result = run_case(nfl_suspensions_case())
        assert len(result.evaluations) == 3
        # The fresh case is fully correct; nothing should be flagged.
        assert all(not e.truly_erroneous for e in result.evaluations)

    def test_stale_builtin_flagged(self):
        result = run_case(nfl_suspensions_case(stale=True))
        stale_eval = result.evaluations[0]
        assert stale_eval.truly_erroneous
        assert stale_eval.flagged

    def test_truth_rank_populated(self):
        result = run_case(nfl_suspensions_case())
        ranks = [e.truth_rank for e in result.evaluations]
        assert all(rank is not None for rank in ranks)
        assert ranks[0] == 1  # 'four lifetime bans' maps exactly


class TestRunCorpus:
    def test_metrics_populated(self, run, corpus):
        metrics = run.metrics
        assert metrics.n_claims == corpus.total_claims
        assert metrics.n_erroneous == corpus.erroneous_claims
        assert 0 <= metrics.recall <= 1
        assert 0 <= metrics.precision <= 1

    def test_coverage_monotone(self, run):
        metrics = run.metrics
        assert metrics.top_k_coverage(1) <= metrics.top_k_coverage(5)
        assert metrics.top_k_coverage(5) <= metrics.top_k_coverage(20)

    def test_limit(self, corpus):
        partial = run_corpus(corpus, limit=2)
        assert len(partial.results) == 2

    def test_engine_stats_accumulated(self, run):
        assert run.engine_stats.queries_requested > 0
        assert run.engine_stats.physical_queries > 0

    def test_f1_consistent(self, run):
        metrics = run.metrics
        p, r = metrics.precision, metrics.recall
        expected = 2 * p * r / (p + r) if p + r else 0.0
        assert metrics.f1 == pytest.approx(expected)

    def test_aggregate_of_parts_matches_whole(self, run):
        pooled = aggregate_metrics(run.results)
        assert pooled.n_claims == run.metrics.n_claims
        assert pooled.true_positives == run.metrics.true_positives


class TestAblationLadders:
    def test_ladder_shapes(self):
        assert len(keyword_context_ladder()) == 5
        assert len(model_ladder()) == 3
        assert len(hits_ladder()) == 4
        assert len(pt_ladder()) == 5

    def test_model_ladder_configs_differ(self):
        ladder = model_ladder()
        assert not ladder[0][1].em.use_evaluations
        assert ladder[1][1].em.use_evaluations
        assert not ladder[1][1].em.use_priors
        assert ladder[2][1].em.use_priors

    def test_model_ablation_improves_coverage(self, corpus):
        """Integration: evaluation results must lift top-1 coverage
        (the paper's Table 10 ladder, on a small corpus)."""
        scores_only = run_corpus(corpus, model_ladder()[0][1], limit=4)
        full = run_corpus(corpus, model_ladder()[2][1], limit=4)
        assert (
            full.metrics.top_k_coverage(1)
            > scores_only.metrics.top_k_coverage(1)
        )


class TestReporting:
    def test_format_table(self):
        table = format_table("T", ["a", "b"], [[1, 2.5], ["x", "y"]])
        assert "=== T ===" in table
        assert "2.5" in table

    def test_format_series(self):
        text = format_series("S", {"line": [(1, 2.0)]})
        assert "(1, 2.0)" in text

    def test_percent(self):
        assert percent(0.708) == "70.8%"

    def test_ragged_rows_padded(self):
        table = format_table("T", ["a", "b", "c"], [[1]])
        assert table.count("\n") == 3
