"""Unit tests for the user-study simulator."""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, generate_corpus
from repro.harness import run_corpus, run_crowd_study, run_user_study
from repro.harness.users import UserSimulator, default_users


@pytest.fixture(scope="module")
def results():
    corpus = generate_corpus(CorpusConfig(n_articles=8, seed=13))
    return run_corpus(corpus).results


@pytest.fixture(scope="module")
def study(results):
    return run_user_study(results)


class TestSessions:
    def test_aggchecker_session_timeline_monotone(self, results):
        simulator = UserSimulator(1)
        user = default_users(1)[0]
        session = simulator.aggchecker_session(results[0], user, 1200.0)
        times = [e.timestamp for e in session.events]
        assert times == sorted(times)
        assert len(session.events) == len(results[0].evaluations)

    def test_sql_sessions_slower(self, results):
        simulator = UserSimulator(2)
        user = default_users(1)[0]
        agg = simulator.aggchecker_session(results[0], user, 10**6)
        sql = simulator.sql_session(results[0], user, 10**6)
        assert sql.events[-1].timestamp > agg.events[-1].timestamp

    def test_time_limit_caps_verified(self, results):
        simulator = UserSimulator(3)
        user = default_users(1)[0]
        session = simulator.sql_session(results[0], user, 30.0)
        assert session.total_verified <= 1

    def test_careless_workers_verify_less(self, results):
        careful = UserSimulator(4).aggchecker_session(
            results[0], default_users(1)[0], 10**6, care=1.0
        )
        careless = UserSimulator(4).aggchecker_session(
            results[0], default_users(1)[0], 10**6, care=0.0
        )
        assert careless.total_verified <= careful.total_verified

    def test_deterministic_given_seed(self, results):
        user = default_users(1)[0]
        first = UserSimulator(9).aggchecker_session(results[0], user, 1200.0)
        second = UserSimulator(9).aggchecker_session(results[0], user, 1200.0)
        assert [e.timestamp for e in first.events] == [
            e.timestamp for e in second.events
        ]


class TestStudyOutcome:
    def test_six_articles_eight_users(self, study):
        assert len(study.sessions) == 8 * 6
        assert {s.tool for s in study.sessions} == {"aggchecker", "sql"}

    def test_feature_usage_sums_to_100(self, study):
        usage = study.feature_usage()
        assert sum(usage.values()) == pytest.approx(100.0)

    def test_aggchecker_beats_sql(self, study):
        agg = study.recall_precision("aggchecker")
        sql = study.recall_precision("sql")
        assert agg[2] >= sql[2]

    def test_speedup_positive(self, study):
        assert study.average_speedup() > 1.0

    def test_survey_prefers_aggchecker(self, study):
        survey = study.survey()
        overall = survey["Overall"]
        assert overall["AC+"] + overall["AC++"] >= overall["SQL+"] + overall["SQL++"]

    def test_throughput_views(self, study):
        by_user = study.throughput_by_user()
        assert len(by_user) == 8
        by_article = study.throughput_by_article()
        assert len(by_article) == 6


class TestCrowdStudy:
    def test_participant_counts(self, results):
        outcome = run_crowd_study(results)
        agg = outcome.by_tool("aggchecker")
        sheet = outcome.by_tool("spreadsheet")
        assert len(agg) == 19 and len(sheet) == 13

    def test_paragraph_scope_easier_for_sheets(self, results):
        document = run_crowd_study(results, scope="document")
        paragraph = run_crowd_study(results, scope="paragraph")
        doc_r = document.recall_precision("spreadsheet")[0]
        par_r = paragraph.recall_precision("spreadsheet")[0]
        assert par_r >= doc_r

    def test_aggchecker_dominates(self, results):
        outcome = run_crowd_study(results)
        assert (
            outcome.recall_precision("aggchecker")[2]
            >= outcome.recall_precision("spreadsheet")[2]
        )
