"""Fault-injection suite: crash recovery, quarantine, resume, deadlines.

Every scenario here drives *unmodified* production code paths with faults
armed through :mod:`repro.faults` (environment-inherited, so forked
worker processes fire them too). The contracts under test come straight
from the failure model the harness documents:

- a worker killed mid-corpus is transparent — the run completes with
  verdicts and metrics bit-identical to sequential;
- a poison case (kills every worker that touches it) is quarantined with
  its error after a bounded number of isolated retries, and every other
  case still matches sequential;
- a checkpointed run resumes without re-running finished cases;
- a claim deadline degrades verdicts through the documented ladder
  (reduced scope -> no execution -> unverifiable) instead of hanging.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.checker import DEGRADED_SCOPE_BUDGET, AggChecker
from repro.core.config import AggCheckerConfig
from repro.core.verdict import VerdictStatus
from repro.corpus import CorpusConfig, generate_corpus, nfl_suspensions_case
from repro.errors import CheckpointError, InjectedFault
from repro.faults import FaultSpec, active, decode_specs, encode_specs
from repro.harness import RetryPolicy, run_corpus, run_corpus_parallel
from repro.harness.checkpoint import CorpusCheckpoint, open_checkpoint

from tests.harness.test_parallel import (
    METRIC_FIELDS,
    assert_identical_runs,
    verdict_signature,
)

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(n_articles=4, seed=77))


@pytest.fixture(scope="module")
def sequential(corpus):
    return run_corpus(corpus)


def assert_metrics_match(left, right):
    for name in METRIC_FIELDS:
        assert getattr(left.metrics, name) == getattr(right.metrics, name), name


class TestFaultSpecWire:
    def test_round_trip(self):
        specs = (
            FaultSpec("harness.case", "kill", match="2", times=1),
            FaultSpec("checker.stage", "sleep", match="inference",
                      seconds=0.25, times=0),
            FaultSpec("diskcache.read", "corrupt", match="*.cube"),
        )
        assert decode_specs(encode_specs(specs)) == specs

    def test_unarmed_fire_is_noop(self):
        from repro.faults import fire

        fire("harness.case", "0")  # nothing armed: must not raise

    def test_raise_action(self):
        with active(FaultSpec("demo.point", "raise", match="boom")):
            from repro.faults import fire

            fire("demo.point", "other")  # no match
            with pytest.raises(InjectedFault):
                fire("demo.point", "boom")
            fire("demo.point", "boom")  # times=1 budget spent


class TestWorkerCrashRecovery:
    def test_killed_worker_recovers_bit_identical(self, corpus, sequential):
        # Kill the first worker that reaches case 2; the pool breaks, the
        # retry layer re-runs the lost cases in sandboxes, and the final
        # run is indistinguishable in verdicts and metrics. Engine stats
        # are NOT compared: the sandbox checker starts cold, so cache
        # counters legitimately differ (the docstring caveat).
        with active(FaultSpec("harness.case", "kill", match="2", times=1)):
            run = run_corpus_parallel(
                corpus, workers=2,
                retry=RetryPolicy(backoff_base=0.01),
            )
        assert run.quarantined == {}
        assert verdict_signature(run) == verdict_signature(sequential)
        assert_metrics_match(run, sequential)

    def test_poison_case_is_quarantined(self, corpus, sequential):
        # times=0 = unlimited: case 1 kills every process that touches
        # it, including each isolated retry sandbox.
        with active(FaultSpec("harness.case", "kill", match="1", times=0)):
            run = run_corpus_parallel(
                corpus, workers=2,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.01),
            )
        assert set(run.quarantined) == {1}
        assert "BrokenProcessPool" in run.quarantined[1]
        # Survivors: everything but case 1, bit-identical to sequential.
        survivor_sig = [
            sig for index, sig in enumerate(verdict_signature(sequential))
            if index != 1
        ]
        assert verdict_signature(run) == survivor_sig
        assert run.metrics.n_claims == sequential.metrics.n_claims - len(
            sequential.results[1].evaluations
        )

    def test_retry_policy_backoff_is_bounded(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=0.2)
        assert policy.backoff_seconds(1) == 0.05
        assert policy.backoff_seconds(2) == 0.1
        assert policy.backoff_seconds(3) == 0.2
        assert policy.backoff_seconds(10) == 0.2
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestCheckpointResume:
    def test_resume_skips_finished_cases(self, corpus, sequential, tmp_path):
        path = tmp_path / "run.ckpt"
        partial = run_corpus(corpus, limit=2, checkpoint=path)
        assert len(partial.results) == 2
        # Arm always-raise faults on the finished cases: if resume
        # re-ran either of them the fault would fire and abort — a clean
        # completion proves they were skipped.
        with active(FaultSpec("harness.case", "raise", match="[01]", times=0)):
            full = run_corpus(corpus, checkpoint=path, resume=True)
        assert full.quarantined == {}
        assert_identical_runs(full, sequential)

    def test_parallel_resume_matches_sequential(
        self, corpus, sequential, tmp_path
    ):
        path = tmp_path / "run.ckpt"
        run_corpus(corpus, limit=2, checkpoint=path)
        with active(FaultSpec("harness.case", "raise", match="[01]", times=0)):
            full = run_corpus_parallel(
                corpus, workers=2, checkpoint=path, resume=True
            )
        assert verdict_signature(full) == verdict_signature(sequential)
        assert_metrics_match(full, sequential)

    def test_mismatched_config_is_refused(self, corpus, tmp_path):
        path = tmp_path / "run.ckpt"
        run_corpus(corpus, limit=1, checkpoint=path)
        other = AggCheckerConfig(predicate_hits=7)
        with pytest.raises(CheckpointError, match="different"):
            run_corpus(corpus, other, limit=1, checkpoint=path, resume=True)

    def test_corrupt_checkpoint_is_refused(self, corpus, tmp_path):
        path = tmp_path / "run.ckpt"
        run_corpus(corpus, limit=1, checkpoint=path)
        path.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError, match="unreadable"):
            run_corpus(corpus, limit=1, checkpoint=path, resume=True)

    def test_version_gate(self, corpus, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(pickle.dumps({"version": -1}))
        with pytest.raises(CheckpointError, match="unknown format"):
            run_corpus(corpus, limit=1, checkpoint=path, resume=True)

    def test_without_resume_checkpoint_is_overwritten(self, corpus, tmp_path):
        path = tmp_path / "run.ckpt"
        run_corpus(corpus, limit=1, checkpoint=path)
        done, quarantined, store = open_checkpoint(
            corpus.cases[:1], None, path, resume=False
        )
        assert (done, quarantined) == ({}, {})
        assert isinstance(store, CorpusCheckpoint)


class TestDeadlineLadder:
    def test_no_deadline_is_the_default(self):
        case = nfl_suspensions_case()
        checker = AggChecker(case.database, AggCheckerConfig(),
                             case.data_dictionary)
        report = checker.check_claims(case.document, case.claims)
        assert all(v.degraded is None for v in report.verdicts)

    def test_impossible_deadline_yields_unverifiable(self):
        # A nanosecond budget expires before matching: every claim gets
        # the terminal rung, and the report still arrives (no hang, no
        # exception).
        case = nfl_suspensions_case()
        config = AggCheckerConfig(claim_deadline=1e-9)
        checker = AggChecker(case.database, config, case.data_dictionary)
        report = checker.check_claims(case.document, case.claims)
        assert len(report.verdicts) == len(case.claims)
        for verdict in report.verdicts:
            assert verdict.status is VerdictStatus.UNVERIFIABLE
            assert verdict.degraded == "timeout"
            assert verdict.distribution is None
            assert verdict.status.flagged
        assert report.engine_stats.deadline_unverifiable == len(case.claims)

    def test_slow_inference_degrades_to_scope_rung(self):
        # Matching is fast; a delay injected at the inference stage burns
        # the budget so the full-quality rung dies and the scope rung
        # (grace budget, shrunk evaluation scope) answers instead.
        case = nfl_suspensions_case()
        config = AggCheckerConfig(claim_deadline=0.05)
        checker = AggChecker(case.database, config, case.data_dictionary)
        budget = 0.05 * len(case.claims)
        with active(
            FaultSpec("checker.rung", "sleep", match="full",
                      seconds=budget + 0.2, times=1)
        ):
            report = checker.check_claims(case.document, case.claims)
        assert all(v.degraded == "scope" for v in report.verdicts)
        assert all(v.distribution is not None for v in report.verdicts)
        assert report.engine_stats.deadline_degraded == 1
        assert report.engine_stats.deadline_exec_skipped == 0

    def test_exhausted_grace_reaches_no_exec_rung(self):
        # Burn the main budget AND the scope rung's grace budget: the
        # final rung answers from keyword evidence alone (no engine
        # work), still inside the report.
        case = nfl_suspensions_case()
        config = AggCheckerConfig(claim_deadline=0.05)
        checker = AggChecker(case.database, config, case.data_dictionary)
        budget = 0.05 * len(case.claims)
        with active(
            FaultSpec("checker.rung", "sleep", match="full",
                      seconds=budget + 0.2, times=1),
            FaultSpec("checker.rung", "sleep", match="scope",
                      seconds=budget + 0.2, times=1),
        ):
            report = checker.check_claims(case.document, case.claims)
        assert all(v.degraded == "no_exec" for v in report.verdicts)
        assert report.engine_stats.deadline_degraded == 1
        assert report.engine_stats.deadline_exec_skipped == 1

    def test_degraded_scope_budget_is_bounded(self):
        assert DEGRADED_SCOPE_BUDGET >= 1

    def test_corpus_run_survives_deadline(self, corpus):
        # Deadline degradation composes with the harness: a corpus run
        # under an impossible budget completes with every claim flagged
        # unverifiable rather than erroring out.
        config = AggCheckerConfig(claim_deadline=1e-9)
        run = run_corpus(corpus, config, limit=2)
        statuses = {
            v.status
            for result in run.results
            for v in result.report.verdicts
        }
        assert statuses == {VerdictStatus.UNVERIFIABLE}
        assert run.metrics.n_claims > 0
