"""Determinism and sharding tests for the parallel corpus pipeline.

The contract under test: a parallel run at any worker count produces
bit-identical metrics and per-case verdicts to the sequential run, and a
warm-disk-cache run matches a cold run — caching and sharding are pure
performance levers, never behavior changes.
"""

from __future__ import annotations

from dataclasses import fields

import pytest

from repro.core.config import AggCheckerConfig
from repro.corpus import CorpusConfig, generate_corpus, nfl_suspensions_case
from repro.db.engine import EngineConfig, EngineStats
from repro.harness import CheckerPool, run_corpus, run_corpus_parallel, shard_cases
from repro.harness.ablations import model_ladder, run_ladder
from repro.harness.parallel import resolve_workers

#: RunMetrics fields that must match bit-for-bit between pipeline shapes
#: (total_seconds is wall-clock and excluded by nature).
METRIC_FIELDS = (
    "n_claims",
    "n_erroneous",
    "n_flagged",
    "true_positives",
    "coverage_counts",
    "coverage_counts_correct",
    "coverage_counts_incorrect",
    "n_correct_claims",
)


def verdict_signature(run):
    return [
        [(v.status, v.top_query, v.top_result) for v in result.report.verdicts]
        for result in run.results
    ]


def assert_identical_runs(left, right):
    assert verdict_signature(left) == verdict_signature(right)
    for name in METRIC_FIELDS:
        assert getattr(left.metrics, name) == getattr(right.metrics, name), name
    for spec in fields(EngineStats):
        if spec.name == "query_seconds":  # wall-clock, not a counter
            continue
        assert getattr(left.engine_stats, spec.name) == getattr(
            right.engine_stats, spec.name
        ), spec.name


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(n_articles=4, seed=77))


@pytest.fixture(scope="module")
def sequential(corpus):
    return run_corpus(corpus)


class TestShardCases:
    def test_groups_stay_whole_and_deterministic(self, corpus):
        cases = corpus.cases + corpus.cases  # every database appears twice
        shards = shard_cases(cases, 3)
        assert shards == shard_cases(cases, 3)
        assert sorted(i for shard in shards for i in shard) == list(
            range(len(cases))
        )
        for shard in shards:
            databases = {id(cases[i].database) for i in shard}
            # A database's cases never split across shards.
            for other in shards:
                if other is shard:
                    continue
                assert not databases & {id(cases[i].database) for i in other}

    def test_balanced_within_group_size(self, corpus):
        shards = shard_cases(corpus.cases, 2)
        sizes = [len(shard) for shard in shards]
        assert abs(sizes[0] - sizes[1]) <= 1

    def test_more_shards_than_cases(self, corpus):
        shards = shard_cases(corpus.cases[:2], 8)
        assert len(shards) == 2

    def test_invalid_shard_count(self, corpus):
        with pytest.raises(ValueError):
            shard_cases(corpus.cases, 0)

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestParallelDeterminism:
    def test_two_workers_match_sequential(self, corpus, sequential):
        parallel = run_corpus(corpus, workers=2)
        assert_identical_runs(sequential, parallel)

    def test_worker_count_capped_by_shards(self, corpus, sequential):
        # More workers than cases: shards collapse, results unchanged.
        parallel = run_corpus_parallel(corpus, limit=2, workers=6)
        reference = run_corpus(corpus, limit=2)
        assert_identical_runs(reference, parallel)

    def test_single_worker_falls_back_in_process(self, corpus, sequential):
        assert_identical_runs(sequential, run_corpus_parallel(corpus, workers=1))


class TestDiskCacheDeterminism:
    def test_warm_run_matches_cold_run(self, corpus, tmp_path, sequential):
        config = AggCheckerConfig(engine=EngineConfig(cache_dir=str(tmp_path)))
        cold = run_corpus(corpus, config, limit=2)
        warm = run_corpus(corpus, config, limit=2)
        reference = run_corpus(corpus, limit=2)

        assert verdict_signature(cold) == verdict_signature(reference)
        assert verdict_signature(warm) == verdict_signature(reference)
        for name in METRIC_FIELDS:
            assert getattr(warm.metrics, name) == getattr(
                cold.metrics, name
            ), name
        # The cold run wrote every cube; the warm run executed none.
        assert cold.engine_stats.disk_hits == 0
        assert cold.engine_stats.disk_misses > 0
        assert warm.engine_stats.cube_queries == 0
        assert warm.engine_stats.disk_hit_rate() >= 0.9


class TestCheckerPool:
    def test_checker_reused_per_database(self):
        case = nfl_suspensions_case()
        pool = CheckerPool()
        first = pool.run(case)
        assert len(pool) == 1
        second = pool.run(case)
        assert len(pool) == 1
        assert [e.flagged for e in first.evaluations] == [
            e.flagged for e in second.evaluations
        ]
        # Second pass over the same database is served from the engine's
        # result cache: no new physical queries.
        assert second.report.engine_stats.physical_queries == 0
        assert second.report.engine_stats.cache_hits > 0

    def test_distinct_databases_get_distinct_checkers(self):
        pool = CheckerPool()
        pool.run(nfl_suspensions_case())
        pool.run(nfl_suspensions_case(stale=True))
        assert len(pool) == 2
        pool.clear()
        assert len(pool) == 0

    def test_report_stats_are_per_document_deltas(self):
        case = nfl_suspensions_case()
        pool = CheckerPool()
        first = pool.run(case)
        second = pool.run(case)
        checker = pool.checker_for(case)
        totals = EngineStats()
        totals.merge(first.report.engine_stats)
        totals.merge(second.report.engine_stats)
        assert totals == checker.engine.stats

    def test_stats_snapshot_merges_all_pooled_engines(self):
        pool = CheckerPool()
        first = pool.run(nfl_suspensions_case())
        second = pool.run(nfl_suspensions_case(stale=True))
        snapshot = pool.stats_snapshot()
        totals = EngineStats()
        totals.merge(first.report.engine_stats)
        totals.merge(second.report.engine_stats)
        assert snapshot == totals
        # Snapshots are copies: mutating one must not touch pool state.
        snapshot.physical_queries += 1000
        assert pool.stats_snapshot() != snapshot

    def test_entry_for_builds_once_under_concurrency(self):
        import threading

        case = nfl_suspensions_case()
        pool = CheckerPool()
        builds = []
        barrier = threading.Barrier(4)

        def factory():
            from repro.core import AggChecker

            builds.append(1)
            return AggChecker(case.database, pool.config, case.data_dictionary)

        entries = []

        def worker():
            barrier.wait()
            entries.append(pool.entry_for("shared-key", factory))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1
        assert len({id(entry) for entry in entries}) == 1
        assert entries[0].checker is not None
        assert len(pool) == 1


class TestRunLadder:
    def test_ladder_shares_cache_dir(self, corpus, tmp_path):
        ladder = model_ladder()[-1:]
        first = run_ladder(ladder, corpus, limit=1, cache_dir=str(tmp_path))
        again = run_ladder(ladder, corpus, limit=1, cache_dir=str(tmp_path))
        assert first[0][0] == again[0][0]
        assert verdict_signature(first[0][1]) == verdict_signature(again[0][1])
        assert first[0][1].engine_stats.disk_misses > 0
        assert again[0][1].engine_stats.disk_hit_rate() >= 0.9
