"""Space budgets: unit contracts and the degradation ladder end to end.

Unit layer (no NumPy needed): :func:`estimate_cube_cells` is the
pre-materialization cardinality bound — the product over cube dimensions
of (distinct literals + DEFAULT + ALL) — and :class:`ResourceBudget` is
the stage-boundary check that turns an over-estimate into
:class:`BudgetExceeded` instead of an allocation.

Pipeline layer (needs NumPy): a budget the running example cannot meet
must walk the same PR-6 ladder as a deadline — reduced scope, then
no-execution priors — producing explicit ``degraded`` verdicts, budget
counters on the engine stats, and (the PR's acceptance bar) CLI output
bit-identical to the service under the same limits. The ``faults`` tests
drive the ladder through the ``budget.estimate`` fire point, no hostile
data required.
"""

from __future__ import annotations

import json

import pytest

from repro.budget import ResourceBudget, estimate_cube_cells
from repro.errors import BudgetExceeded, ReproError


class TestEstimateCubeCells:
    def test_no_dimensions_is_one_cell(self):
        assert estimate_cube_cells((), {}) == 1

    def test_each_dimension_contributes_literals_plus_two(self):
        # literal | DEFAULT | ALL per dimension.
        estimate = estimate_cube_cells(
            ("team", "year"), {"team": ("BAL", "CLE"), "year": ("2014",)}
        )
        assert estimate == (2 + 2) * (1 + 2)

    def test_dimension_without_literals_still_counts_default_and_all(self):
        assert estimate_cube_cells(("team",), {}) == 2

    def test_estimate_grows_multiplicatively(self):
        one = estimate_cube_cells(("a",), {"a": ("x",) * 5})
        two = estimate_cube_cells(("a", "b"), {"a": ("x",) * 5, "b": ("y",) * 5})
        assert two == one * one


class TestResourceBudget:
    def test_non_positive_limits_are_rejected(self):
        for field in ("max_rows", "max_cube_cells", "max_candidates"):
            with pytest.raises(ValueError):
                ResourceBudget(**{field: 0})

    def test_unlimited_budget_checks_pass(self):
        budget = ResourceBudget()
        budget.check_rows(10**12, "stage")
        budget.check_cube(10**12, "stage")
        budget.check_candidates(10**12, "stage")

    @pytest.mark.parametrize(
        "method,kind",
        [
            ("check_rows", "rows"),
            ("check_cube", "cube_cells"),
            ("check_candidates", "candidates"),
        ],
    )
    def test_each_kind_raises_with_stage_and_estimate(self, method, kind):
        budget = ResourceBudget(
            max_rows=5, max_cube_cells=5, max_candidates=5
        )
        with pytest.raises(BudgetExceeded) as excinfo:
            getattr(budget, method)(6, "some-stage")
        error = excinfo.value
        assert error.kind == kind
        assert error.stage == "some-stage"
        assert error.limit == 5
        assert error.estimate == 6
        assert isinstance(error, ReproError)

    @pytest.mark.parametrize(
        "method", ["check_rows", "check_cube", "check_candidates"]
    )
    def test_at_the_limit_passes(self, method):
        budget = ResourceBudget(
            max_rows=5, max_cube_cells=5, max_candidates=5
        )
        getattr(budget, method)(5, "stage")


@pytest.mark.needs_numpy
class TestBudgetLadder:
    @pytest.fixture()
    def nfl(self):
        from repro.core.checker import AggChecker
        from repro.core.config import AggCheckerConfig
        from repro.db import Database
        from repro.db.csvio import load_csv_text
        from repro.service.protocol import parse_article

        from tests.service.test_server import NFL_ARTICLE, NFL_CSV

        database = Database(
            "t", [load_csv_text(NFL_CSV, "nflsuspensions")]
        )
        document = parse_article(NFL_ARTICLE, "nfl")

        def build(**limits):
            return AggChecker(database, AggCheckerConfig(**limits)), document

        return build

    @pytest.mark.parametrize(
        "limits",
        [
            {"max_cube_cells": 1},
            {"max_candidates": 1},
            {"max_rows_materialized": 1},
        ],
        ids=["cube_cells", "candidates", "rows"],
    )
    def test_impossible_budget_degrades_instead_of_failing(
        self, nfl, limits
    ):
        checker, document = nfl(**limits)
        report = checker.check_document(document)
        assert report.verdicts, "degraded runs still produce verdicts"
        for verdict in report.verdicts:
            assert verdict.degraded == "no_exec"
        stats = report.engine_stats
        assert stats.budget_rejections >= 2  # full and scope rungs
        assert stats.budget_degraded == 1
        assert stats.budget_exec_skipped == 1

    def test_generous_budget_changes_nothing(self, nfl):
        bounded, document = nfl(
            max_cube_cells=10**9,
            max_candidates=10**9,
            max_rows_materialized=10**9,
        )
        unbounded, _ = nfl()
        limited = bounded.check_document(document)
        free = unbounded.check_document(document)
        assert [
            (v.status, v.probability_correct, v.degraded)
            for v in limited.verdicts
        ] == [
            (v.status, v.probability_correct, v.degraded)
            for v in free.verdicts
        ]
        assert limited.engine_stats.budget_rejections == 0

    def test_budget_limits_change_the_config_fingerprint(self):
        from repro.core.config import AggCheckerConfig
        from repro.service.incremental import config_fingerprint

        assert config_fingerprint(
            AggCheckerConfig(max_cube_cells=1)
        ) != config_fingerprint(AggCheckerConfig())

    @pytest.mark.faults
    def test_budget_estimate_fault_drives_the_ladder(self, nfl):
        from repro.faults import FaultSpec, active

        checker, document = nfl()
        with active(FaultSpec("budget.estimate", "raise", times=0)):
            report = checker.check_document(document)
        for verdict in report.verdicts:
            assert verdict.degraded == "no_exec"
        assert report.engine_stats.budget_rejections >= 2


@pytest.mark.needs_numpy
class TestCliServiceBitIdentity:
    def test_over_budget_request_degrades_identically_cli_vs_service(
        self, tmp_path, capsys
    ):
        """The PR's acceptance bar: same budget, same degraded bits."""
        from repro.cli import main as cli_main
        from repro.core.config import AggCheckerConfig

        from tests.service.test_aio import serve
        from tests.service.test_server import (
            NFL_ARTICLE,
            NFL_CSV,
            claims_of,
            post_check,
        )

        csv_path = tmp_path / "nflsuspensions.csv"
        csv_path.write_text(NFL_CSV)
        article_path = tmp_path / "article.html"
        article_path.write_text(NFL_ARTICLE)

        code = cli_main(
            [
                "check", "--csv", str(csv_path), "--article",
                str(article_path), "--max-cube-cells", "1", "--json",
            ]
        )
        assert code in (0, 1)
        oracle = json.loads(capsys.readouterr().out)["claims"]
        assert oracle and all(c.get("degraded") == "no_exec" for c in oracle)

        server = serve(
            workers=1, config=AggCheckerConfig(max_cube_cells=1)
        )
        try:
            events = post_check(
                server.url,
                {
                    "csv": str(csv_path),
                    "article_path": str(article_path),
                },
            )
            assert claims_of(events) == oracle
            summary = events[-1]
            assert summary["event"] == "summary"
            assert summary["errors"] == 0
        finally:
            server.shutdown_gracefully()

    def test_budget_degraded_verdicts_are_never_memoized(self, tmp_path):
        """Resubmitting under a budget re-verifies: no cached degraded bits."""
        from repro.core.config import AggCheckerConfig

        from tests.service.test_aio import serve
        from tests.service.test_server import NFL_ARTICLE, NFL_CSV, post_check

        csv_path = tmp_path / "nflsuspensions.csv"
        csv_path.write_text(NFL_CSV)
        article_path = tmp_path / "article.html"
        article_path.write_text(NFL_ARTICLE)
        payload = {
            "csv": str(csv_path),
            "article_path": str(article_path),
        }
        server = serve(
            workers=1, config=AggCheckerConfig(max_cube_cells=1)
        )
        try:
            post_check(server.url, payload)
            second = post_check(server.url, payload)
            assert all(
                not e["cached"] for e in second if e["event"] == "claim"
            )
        finally:
            server.shutdown_gracefully()
