"""Adversarial request-body fuzzing for the service wire protocol.

``CheckRequest.from_json`` is the first code that touches client JSON
after decoding: any decoded value must either parse into a request or
raise :class:`ProtocolError` with a machine-readable ``reason`` — never a
``KeyError``/``TypeError``/``AttributeError`` traceback. Hypothesis
throws arbitrary JSON-shaped values at it plus a biased generator that
hits real wire-field names with wrong-typed values (far more likely to
reach deep branches than uniform noise). Runs on the no-NumPy leg too.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import protocol
from repro.service.protocol import (
    MAX_CLAIMS_PER_DOCUMENT,
    MAX_INLINE_TABLES,
    CheckRequest,
    ProtocolError,
    enforce_claim_limit,
)

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=24),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=12), children, max_size=4),
    max_leaves=24,
)

#: Bodies whose keys are real wire fields (plus junk) with hostile values.
biased_bodies = st.dictionaries(
    st.sampled_from(sorted(protocol._WIRE_FIELDS) + ["junk", "csv "]),
    json_values,
    max_size=6,
)


class TestFuzzFromJson:
    @given(payload=json_values)
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_json_parses_or_raises_protocol_error(self, payload):
        try:
            request = CheckRequest.from_json(payload)
        except ProtocolError as error:
            assert isinstance(error.reason, str) and error.reason
        else:
            assert isinstance(request, CheckRequest)

    @given(payload=biased_bodies)
    @settings(max_examples=200, deadline=None)
    def test_wire_field_shaped_bodies_never_traceback(self, payload):
        try:
            request = CheckRequest.from_json(payload)
        except ProtocolError as error:
            assert isinstance(error.reason, str) and error.reason
        else:
            assert isinstance(request, CheckRequest)


class TestRequestLimits:
    def test_too_many_inline_tables(self):
        tables = {f"t{i}": "a\n1\n" for i in range(MAX_INLINE_TABLES + 1)}
        with pytest.raises(ProtocolError) as excinfo:
            CheckRequest.from_json({"tables": tables, "article": "x"})
        assert excinfo.value.reason == "too_many_tables"

    def test_table_count_at_the_limit_is_accepted(self):
        tables = {f"t{i}": "a\n1\n" for i in range(MAX_INLINE_TABLES)}
        request = CheckRequest.from_json({"tables": tables, "article": "x"})
        assert len(request.inline_tables) == MAX_INLINE_TABLES

    def test_claim_limit_rejects_with_reason(self):
        with pytest.raises(ProtocolError) as excinfo:
            enforce_claim_limit(MAX_CLAIMS_PER_DOCUMENT + 1)
        assert excinfo.value.reason == "too_many_claims"

    def test_claim_limit_at_the_boundary_passes(self):
        enforce_claim_limit(MAX_CLAIMS_PER_DOCUMENT)

    def test_unknown_fields_keep_the_default_reason(self):
        with pytest.raises(ProtocolError) as excinfo:
            CheckRequest.from_json({"artcle": "typo"})
        assert excinfo.value.reason == "bad_request"

    def test_inline_tables_load_under_service_limits(self):
        wide = ",".join(f"c{i}" for i in range(300))
        request = CheckRequest.from_json(
            {"tables": {"t": wide + "\n"}, "article": "x"}
        )
        from repro.errors import CsvFormatError

        with pytest.raises(CsvFormatError) as excinfo:
            request.load_database()
        assert excinfo.value.reason == "too_many_columns"
