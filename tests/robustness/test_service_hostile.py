"""Hostile payloads against a live service: structured errors, no crashes.

The acceptance bar for adversarial-input hardening: whatever a client
throws at ``POST /check`` — binary garbage, malformed JSON, oversized
inline tables, quote bombs, over-limit claim counts, over-cost requests —
the server answers a structured JSON error (or a degraded verdict
stream), stays alive, and still verifies a benign request afterwards.
Covers cost-based admission (413 + machine-readable reason) and
RSS-pressure shedding end to end. Needs NumPy (full pipeline).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AggCheckerConfig
from repro.faults import FaultSpec, active
from repro.service import protocol
from repro.service.memwatch import read_rss_mb

from tests.service.test_aio import serve, wait_for
from tests.service.test_server import (
    NFL_ARTICLE,
    NFL_CSV,
    claims_of,
    get_json,
    post_check,
)

pytestmark = pytest.mark.needs_numpy


def post_raw(url, body, headers=None, timeout=30):
    """POST bytes to /check; (status, decoded body).

    Error responses are one pretty-printed JSON object; 200 responses
    are NDJSON and decode to a list of events.
    """
    request = urllib.request.Request(
        url + "/check",
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        error.close()
    if not raw.strip():
        return status, None
    try:
        return status, json.loads(raw)
    except ValueError:
        return status, [
            json.loads(line) for line in raw.splitlines() if line.strip()
        ]


BENIGN = {"tables": {"nflsuspensions": NFL_CSV}, "article": NFL_ARTICLE}

HOSTILE_BODIES = {
    "empty": b"",
    "not-json": b"this is not json",
    "binary-garbage": bytes(range(256)) * 4,
    "non-object": b"[1, 2, 3]",
    "unknown-fields": b'{"artcile": "typo", "junk": 1}',
    "wrong-types": b'{"csv": 7, "article": ["x"]}',
    "deep-nesting": json.dumps(
        {"article": "x", "tables": {"t": "a\n1\n"}, "junk": None}
    ).encode()[:-1],  # truncated JSON
    "csv-quote-bomb": json.dumps(
        {"tables": {"t": '"' + "a" * 200_000}, "article": "x"}
    ).encode(),
    "csv-too-wide": json.dumps(
        {
            "tables": {"t": ",".join(f"c{i}" for i in range(400)) + "\n"},
            "article": "The total was 5.",
        }
    ).encode(),
    "csv-duplicate-columns": json.dumps(
        {"tables": {"t": ";,;\n1,2\n"}, "article": "x"}
    ).encode(),
    "too-many-tables": json.dumps(
        {
            "tables": {f"t{i}": "a\n1\n" for i in range(40)},
            "article": "x",
        }
    ).encode(),
    "conflicting-reference": json.dumps(
        {"database": "deadbeef", "tables": {"t": "a\n1\n"}, "article": "x"}
    ).encode(),
    "missing-article": json.dumps({"tables": {"t": "a\n1\n"}}).encode(),
}


@pytest.fixture(scope="module")
def hostile_server():
    server = serve(workers=1)
    try:
        yield server
    finally:
        server.shutdown_gracefully()


class TestHostilePayloads:
    @pytest.mark.parametrize("name", sorted(HOSTILE_BODIES))
    def test_hostile_body_gets_a_structured_error(
        self, hostile_server, name
    ):
        status, body = post_raw(hostile_server.url, HOSTILE_BODIES[name])
        assert 400 <= status < 500, f"{name}: expected a 4xx, got {status}"
        assert isinstance(body, dict) and "error" in body
        if status == 400:
            assert body.get("reason"), f"{name}: 400 without a reason"

    @given(body=st.binary(max_size=2048))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_bytes_never_crash_the_server(self, hostile_server, body):
        status, decoded = post_raw(hostile_server.url, body)
        # 411: an empty body has no length to read.
        assert status in (200, 400, 411, 413, 422)
        if status != 200:
            assert isinstance(decoded, dict) and "error" in decoded

    def test_claim_limit_maps_to_a_400(self, hostile_server, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_CLAIMS_PER_DOCUMENT", 0)
        status, body = post_raw(
            hostile_server.url, json.dumps(BENIGN).encode()
        )
        assert status == 400
        assert body["reason"] == "too_many_claims"

    def test_server_still_healthy_and_verifying_after_the_barrage(
        self, hostile_server
    ):
        health = get_json(hostile_server.url + "/health")
        assert health["status"] == "ok"
        assert "memory" in health
        events = post_check(hostile_server.url, BENIGN)
        claims = claims_of(events)
        assert claims and all("degraded" not in c for c in claims)


class TestCostAdmission:
    def test_over_cost_request_is_rejected_with_413(self):
        server = serve(workers=1, max_request_cost=1)
        try:
            status, body = post_raw(
                server.url, json.dumps(BENIGN).encode()
            )
            assert status == 413
            assert body["reason"] == "cost_exceeded"
            assert body["max_cost"] == 1
            assert body["cost"] > 1
            stats = get_json(server.url + "/stats")
            assert stats["admission"]["rejected_cost"] == 1
            assert stats["admission"]["max_request_cost"] == 1
            assert server.service.queue.stats()["enqueued"] == 0
        finally:
            server.shutdown_gracefully()

    def test_cheap_requests_pass_under_a_generous_ceiling(self):
        server = serve(workers=1, max_request_cost=10**9)
        try:
            events = post_check(server.url, BENIGN)
            assert claims_of(events)
            assert (
                get_json(server.url + "/stats")["admission"]["rejected_cost"]
                == 0
            )
        finally:
            server.shutdown_gracefully()

    @pytest.mark.faults
    def test_admission_cost_fault_drives_the_413_path(self):
        server = serve(workers=1)
        try:
            with active(FaultSpec("admission.cost", "raise")):
                status, body = post_raw(
                    server.url, json.dumps(BENIGN).encode()
                )
            assert status == 413
            assert body["reason"] == "cost_exceeded"
            # The fault consumed its one firing: service recovers.
            events = post_check(server.url, BENIGN)
            assert claims_of(events)
        finally:
            server.shutdown_gracefully()


class TestMemoryPressure:
    def test_rss_over_limit_sheds_to_degraded_verdicts(self):
        if read_rss_mb() is None:
            pytest.skip("no /proc on this platform")
        # Any real process is over a 1 MiB budget: trips immediately.
        server = serve(workers=1, max_rss_mb=1.0, rss_interval=0.02)
        try:
            assert wait_for(
                lambda: get_json(server.url + "/health")["memory"]["shedding"]
            )
            health = get_json(server.url + "/health")
            assert health["memory"]["rss_mb"] > health["memory"]["max_rss_mb"]
            assert health["breaker"]["forced_open"]
            events = post_check(server.url, BENIGN)
            claims = claims_of(events)
            assert claims, "shedding still answers, degraded"
            for claim in claims:
                assert claim["status"] == "unverifiable"
                assert claim["degraded"] is not None
        finally:
            server.shutdown_gracefully()

    def test_health_reports_rss_without_a_watchdog(self):
        server = serve(workers=1)
        try:
            memory = get_json(server.url + "/health")["memory"]
            assert memory["max_rss_mb"] is None
            assert not memory["shedding"]
        finally:
            server.shutdown_gracefully()
