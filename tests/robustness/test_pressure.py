"""Memory-pressure shedding and journal-corruption detection.

The watchdog tests drive :class:`MemoryWatchdog` deterministically by
monkeypatching the RSS sampler — trip above the limit, hold inside the
hysteresis band, release below it — against the real
:class:`CircuitBreaker` forced-open mode. The journal tests corrupt
records *inside* intact JSON lines (a bit flip the old parse-only replay
would have swallowed silently) and assert the CRC layer quarantines
exactly the damaged record while the rest of the journal replays.
Everything here is stdlib-only and runs on the no-NumPy leg.
"""

from __future__ import annotations

import json

import pytest

from repro.service import memwatch as memwatch_module
from repro.service.memwatch import MemoryWatchdog, read_rss_mb
from repro.service.queue import DurableJobQueue, JOURNAL_NAME
from repro.service.workers import CircuitBreaker


class TestForcedBreaker:
    def test_force_open_sheds_until_released(self):
        breaker = CircuitBreaker(failure_threshold=5)
        assert breaker.allow()
        breaker.force_open("rss over limit")
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats()["forced_open"] == "rss over limit"
        breaker.release_forced()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_repeated_force_open_counts_one_trip(self):
        breaker = CircuitBreaker()
        breaker.force_open("first")
        breaker.force_open("still over")
        assert breaker.forced_trips == 1
        assert breaker.stats()["forced_open"] == "still over"

    def test_forced_hold_is_independent_of_failure_state(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=0.0)
        breaker.record_failure()  # failure-opened, cooldown already over
        breaker.force_open("pressure")
        assert not breaker.allow()  # forced wins over the half-open probe
        breaker.release_forced()
        assert breaker.allow()  # back to the failure-driven half-open


class TestMemoryWatchdog:
    def watchdog(self, monkeypatch, readings):
        values = iter(readings)
        monkeypatch.setattr(
            memwatch_module, "read_rss_mb", lambda: next(values)
        )
        return MemoryWatchdog(CircuitBreaker(), max_rss_mb=100.0)

    def test_trips_above_limit_and_releases_below_hysteresis(
        self, monkeypatch
    ):
        dog = self.watchdog(monkeypatch, [50.0, 150.0, 95.0, 80.0])
        dog.sample_once()
        assert not dog.stats()["shedding"]
        dog.sample_once()  # 150 > 100: trip
        assert dog.stats()["shedding"]
        assert not dog.breaker.allow()
        dog.sample_once()  # 95 is inside the hysteresis band: hold
        assert dog.stats()["shedding"]
        dog.sample_once()  # 80 < 90: release
        assert not dog.stats()["shedding"]
        assert dog.breaker.allow()
        assert dog.stats()["trips"] == 1
        assert dog.stats()["samples"] == 4

    def test_unavailable_proc_is_inert(self, monkeypatch):
        dog = self.watchdog(monkeypatch, [None, None])
        assert dog.sample_once() is None
        assert not dog.stats()["shedding"]
        assert dog.stats()["rss_mb"] is None
        assert dog.breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryWatchdog(CircuitBreaker(), max_rss_mb=0)
        with pytest.raises(ValueError):
            MemoryWatchdog(
                CircuitBreaker(), max_rss_mb=10, interval_seconds=0
            )

    def test_read_rss_mb_on_this_platform(self):
        rss = read_rss_mb()
        if rss is None:
            pytest.skip("no /proc on this platform")
        assert rss > 0


def _seed_queue(directory):
    queue = DurableJobQueue(directory)
    queue.submit("claim-one", "g1", 0, "scope", {"title": "a"})
    queue.submit("claim-two", "g2", 0, "scope", {"title": "b"})
    queue.close()
    return directory / JOURNAL_NAME


class TestJournalChecksums:
    def test_every_record_carries_a_crc(self, tmp_path):
        journal = _seed_queue(tmp_path)
        for line in journal.read_text().splitlines():
            assert "crc" in json.loads(line)

    def test_clean_journal_replays_without_corruption(self, tmp_path):
        _seed_queue(tmp_path)
        queue = DurableJobQueue(tmp_path)
        assert queue.corrupt_records == 0
        assert queue.resumed == 2
        queue.close()

    def test_bit_flip_inside_a_line_quarantines_that_record(self, tmp_path):
        journal = _seed_queue(tmp_path)
        text = journal.read_text()
        # Still valid JSON after the flip — only the checksum can see it.
        assert "claim-one" in text
        journal.write_text(text.replace("claim-one", "claim-0ne", 1))
        queue = DurableJobQueue(tmp_path)
        assert queue.corrupt_records == 1
        assert queue.stats()["corrupt_records"] == 1
        # The undamaged record still replays: corruption is contained.
        assert queue.resumed == 1
        assert [j.key for j in queue.pending_jobs()] == ["claim-two"]
        queue.close()

    def test_missing_crc_field_is_corruption(self, tmp_path):
        journal = _seed_queue(tmp_path)
        lines = journal.read_text().splitlines()
        record = json.loads(lines[0])
        del record["crc"]
        lines[0] = json.dumps(record, separators=(",", ":"))
        journal.write_text("\n".join(lines) + "\n")
        queue = DurableJobQueue(tmp_path)
        assert queue.corrupt_records == 1
        assert queue.resumed == 1
        queue.close()

    def test_truncated_tail_still_stops_replay(self, tmp_path):
        journal = _seed_queue(tmp_path)
        raw = journal.read_bytes()
        journal.write_bytes(raw[:-7])
        queue = DurableJobQueue(tmp_path)
        assert queue.corrupt_records == 1
        assert queue.resumed == 1
        queue.close()

    def test_degraded_acks_are_not_reused_by_idempotency(self, tmp_path):
        queue = DurableJobQueue(
            tmp_path,
            reusable_result=lambda payload: not payload.get("degraded"),
        )
        queue.submit("k1", "g1", 0, "scope", {"title": "a"})
        [job] = queue.lease_group("w", 30.0)
        queue.ack(job.id, {"status": "unverifiable", "degraded": "no_exec"})
        revived, payload = queue.submit(
            "k1", "g2", 0, "scope", {"title": "a"}
        )
        assert payload is None, "degraded ack must not short-circuit"
        assert revived.id != job.id
        # A full-quality ack, by contrast, is reused.
        [job2] = queue.lease_group("w", 30.0)
        queue.ack(job2.id, {"status": "verified"})
        _, reused = queue.submit("k1", "g3", 0, "scope", {"title": "a"})
        assert reused == {"status": "verified"}
        queue.close()
