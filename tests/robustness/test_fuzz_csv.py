"""Adversarial CSV fuzzing: hostile text never escapes the error contract.

The loader's contract is binary: any text input either becomes a
:class:`~repro.db.schema.Table` or raises :class:`CsvFormatError` with a
machine-readable ``reason`` — no raw ``_csv.Error``, no ``ValueError``,
no crash. Hypothesis drives both free-form unicode and quote/comma/NUL
soup at it; the deterministic cases pin the limit reasons and the edge
shapes (BOM-only, header-only, ragged rows) the fuzzer found interesting.
Runs on the no-NumPy CI leg too — the pure-Python loader is the same
attack surface.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.csvio import DEFAULT_CSV_LIMITS, CsvLimits, load_csv_text
from repro.db.datadict import parse_data_dictionary
from repro.db.schema import Table
from repro.errors import CsvFormatError, DataDictionaryError

#: Tight limits so the fuzzer can cross every boundary with small inputs.
TIGHT = CsvLimits(max_rows=8, max_columns=4, max_field_bytes=16)

# Surrogates excluded: inputs model *decoded* text (a real request body
# has already survived UTF-8 decoding, which surrogates cannot).
unicode_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=400
)

#: Quote/comma/newline/NUL soup — the characters the csv module's state
#: machine actually branches on.
csv_soup = st.text(alphabet='",\n\r;ab\x00\t ', max_size=300)


class TestFuzzLoadCsvText:
    @given(text=unicode_text)
    @settings(max_examples=150, deadline=None)
    def test_unicode_loads_or_raises_csv_format_error(self, text):
        try:
            table = load_csv_text(text, "fuzz", TIGHT)
        except CsvFormatError as error:
            assert isinstance(error.reason, str) and error.reason
        else:
            assert isinstance(table, Table)

    @given(text=csv_soup)
    @settings(max_examples=150, deadline=None)
    def test_quote_soup_loads_or_raises_csv_format_error(self, text):
        try:
            table = load_csv_text(text, "fuzz", TIGHT)
        except CsvFormatError as error:
            assert isinstance(error.reason, str) and error.reason
        else:
            assert isinstance(table, Table)

    @given(text=unicode_text)
    @settings(max_examples=100, deadline=None)
    def test_data_dictionary_junk_raises_only_dictionary_errors(self, text):
        try:
            mapping = parse_data_dictionary(text)
        except DataDictionaryError:
            pass
        else:
            assert isinstance(mapping, dict)


class TestLimitReasons:
    def test_empty_input(self):
        with pytest.raises(CsvFormatError) as excinfo:
            load_csv_text("", "t", TIGHT)
        assert excinfo.value.reason == "empty_input"

    def test_too_many_columns(self):
        with pytest.raises(CsvFormatError) as excinfo:
            load_csv_text("a,b,c,d,e\n1,2,3,4,5\n", "t", TIGHT)
        assert excinfo.value.reason == "too_many_columns"

    def test_too_many_rows(self):
        rows = "\n".join(f"{i},x" for i in range(20))
        with pytest.raises(CsvFormatError) as excinfo:
            load_csv_text("a,b\n" + rows + "\n", "t", TIGHT)
        assert excinfo.value.reason == "too_many_rows"

    def test_field_too_large(self):
        with pytest.raises(CsvFormatError) as excinfo:
            load_csv_text("a,b\n" + "x" * 64 + ",2\n", "t", TIGHT)
        assert excinfo.value.reason == "field_too_large"

    def test_field_limit_counts_utf8_bytes_not_characters(self):
        # 10 two-byte characters: under the limit in characters (if it
        # were measured that way), over it in encoded bytes.
        with pytest.raises(CsvFormatError) as excinfo:
            load_csv_text("a,b\n" + "é" * 10 + ",2\n", "t", TIGHT)
        assert excinfo.value.reason == "field_too_large"

    def test_oversized_quoted_field_is_wrapped_not_raw_csv_error(self):
        # Over the csv module's own field_size_limit: the stdlib raises
        # csv.Error internally and the loader must wrap it.
        with pytest.raises(CsvFormatError) as excinfo:
            load_csv_text('"' + "a" * 200_000, "t")
        assert excinfo.value.reason == "csv_format"

    def test_data_dictionary_wraps_the_same_stdlib_error(self):
        with pytest.raises(DataDictionaryError):
            parse_data_dictionary('"' + "a" * 200_000)

    def test_duplicate_header_names_are_a_format_error(self):
        # Found by the fuzzer: ';,;' parses to two identical column
        # names, which must not escape as a SchemaError.
        with pytest.raises(CsvFormatError) as excinfo:
            load_csv_text(";,;", "t", TIGHT)
        assert excinfo.value.reason == "duplicate_columns"

    def test_limits_within_bounds_load_fine(self):
        table = load_csv_text("a,b\n1,2\n3,4\n", "t", TIGHT)
        assert len(table) == 2


class TestEdgeShapes:
    def test_bom_only_input_is_a_degenerate_table_not_a_crash(self):
        table = load_csv_text("﻿", "t", TIGHT)
        assert isinstance(table, Table)
        assert len(table) == 0

    def test_header_only_is_an_empty_table(self):
        table = load_csv_text("a,b\n", "t", TIGHT)
        assert [c.name for c in table.columns] == ["a", "b"]
        assert len(table) == 0

    def test_ragged_rows_are_tolerated(self):
        table = load_csv_text("a,b\n1\n2,3,4\n", "t", DEFAULT_CSV_LIMITS)
        assert isinstance(table, Table)

    def test_nul_bytes_do_not_crash(self):
        table = load_csv_text("a,b\n\x001,2\n", "t", TIGHT)
        assert isinstance(table, Table)


class TestCsvLimitsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_rows": 0},
            {"max_columns": 0},
            {"max_field_bytes": 0},
            {"max_rows": -5},
        ],
    )
    def test_non_positive_limits_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CsvLimits(**{**vars(DEFAULT_CSV_LIMITS), **kwargs})
