"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

NFL_CSV = """Name,Team,Games,Category,Year
Ray Rice,BAL,2,domestic violence,2014
Art Schlichter,BAL,indef,gambling,1983
Stanley Wilson,CIN,indef,"substance abuse, repeated offense",1989
Dexter Manley,WAS,indef,"substance abuse, repeated offense",1991
Roy Tarpley,DAL,indef,"substance abuse, repeated offense",1995
Josh Gordon,CLE,16,substance abuse,2014
"""

ARTICLE_HTML = """
<title>Punishing players</title>
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"""

BAD_ARTICLE_HTML = ARTICLE_HTML.replace("only four previous", "only nine previous")


@pytest.fixture()
def data_files(tmp_path):
    csv = tmp_path / "nflsuspensions.csv"
    csv.write_text(NFL_CSV)
    article = tmp_path / "article.html"
    article.write_text(ARTICLE_HTML)
    bad_article = tmp_path / "bad.html"
    bad_article.write_text(BAD_ARTICLE_HTML)
    return csv, article, bad_article


class TestCheckCommand:
    def test_clean_article_exit_zero(self, data_files, capsys):
        csv, article, _ = data_files
        code = main(["check", "--csv", str(csv), "--article", str(article)])
        output = capsys.readouterr().out
        assert code == 0
        assert "[OK four]" in output
        assert "3 claims checked, 0 flagged" in output

    def test_erroneous_article_exit_one(self, data_files, capsys):
        csv, _, bad_article = data_files
        code = main(["check", "--csv", str(csv), "--article", str(bad_article)])
        output = capsys.readouterr().out
        assert code == 1
        assert "[ERR nine ->" in output

    def test_json_output(self, data_files, capsys):
        csv, article, _ = data_files
        code = main(
            ["check", "--csv", str(csv), "--article", str(article), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["claims"]) == 3
        assert payload["claims"][0]["status"] == "verified"
        assert payload["claims"][0]["top_query"].startswith("SELECT Count(*)")

    def test_plain_text_article(self, data_files, tmp_path, capsys):
        csv, _, _ = data_files
        article = tmp_path / "plain.txt"
        article.write_text(
            "There were four lifetime bans in the data.\n\n"
            "One was for gambling."
        )
        code = main(["check", "--csv", str(csv), "--article", str(article)])
        assert code == 0

    def test_data_dictionary_flag(self, data_files, tmp_path, capsys):
        csv, article, _ = data_files
        dictionary = tmp_path / "dict.csv"
        dictionary.write_text("column,description\nGames,suspension length\n")
        code = main(
            [
                "check",
                "--csv",
                str(csv),
                "--article",
                str(article),
                "--data-dict",
                str(dictionary),
            ]
        )
        assert code == 0

    def test_missing_file_is_reported(self, data_files, tmp_path, capsys):
        csv, _, _ = data_files
        code = main(
            ["check", "--csv", str(csv), "--article", str(tmp_path / "x.html")]
        )
        assert code == 2 or code == 1  # load error surfaces as exit 2

    def test_hits_flag(self, data_files, capsys):
        csv, article, _ = data_files
        code = main(
            [
                "check",
                "--csv",
                str(csv),
                "--article",
                str(article),
                "--hits",
                "5",
            ]
        )
        assert code in (0, 1)


class TestServeParser:
    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert (args.host, args.port) == ("127.0.0.1", 8765)
        assert args.no_incremental is False
        assert args.incremental_capacity == 16384

    def test_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--no-incremental",
                "--cache-dir", ".cubecache", "--backend", "row",
            ]
        )
        assert args.port == 0
        assert args.no_incremental is True
        assert args.cache_dir == ".cubecache"
        assert args.backend == "row"


class TestCorpusStats:
    def test_prints_statistics(self, capsys):
        code = main(["corpus-stats"])
        output = capsys.readouterr().out
        assert code == 0
        assert "articles: 53" in output
        assert "predicate histogram" in output
