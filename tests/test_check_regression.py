"""Unit tests for the benchmark regression gate (no pipeline, no NumPy)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def service_payload(warm: float, incremental: float, rows: int = 2000) -> dict:
    return {
        "numpy": True,
        "databases": 3,
        "rows_per_database": rows,
        "claims": 24,
        "results": {
            "warm": {"speedup_vs_cold": warm},
            "incremental": {"speedup_vs_warm": incremental},
        },
    }


def write(directory: Path, name: str, payload: dict) -> None:
    (directory / name).write_text(json.dumps(payload))


@pytest.fixture()
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    baseline.mkdir()
    fresh.mkdir()
    return baseline, fresh


class TestCheckFile:
    def test_ok_within_tolerance(self, dirs):
        baseline, fresh = dirs
        write(baseline, "BENCH_service.json", service_payload(3.0, 20.0))
        write(fresh, "BENCH_service.json", service_payload(1.6, 11.0))
        rows = check_regression.check_file(
            "BENCH_service.json", 0.5, "HEAD", baseline, fresh
        )
        assert [row[-1] for row in rows] == ["ok", "ok"]

    def test_regression_detected(self, dirs):
        baseline, fresh = dirs
        write(baseline, "BENCH_service.json", service_payload(3.0, 20.0))
        write(fresh, "BENCH_service.json", service_payload(1.2, 20.0))
        rows = check_regression.check_file(
            "BENCH_service.json", 0.5, "HEAD", baseline, fresh
        )
        statuses = {row[0]: row[-1] for row in rows}
        assert statuses["warm_pool_speedup"] == "REGRESSED"
        assert statuses["incremental_speedup_vs_warm"] == "ok"

    def test_workload_mismatch_skips(self, dirs):
        baseline, fresh = dirs
        write(baseline, "BENCH_service.json", service_payload(3.0, 20.0))
        write(
            fresh, "BENCH_service.json", service_payload(0.1, 0.1, rows=50)
        )
        rows = check_regression.check_file(
            "BENCH_service.json", 0.5, "HEAD", baseline, fresh
        )
        assert len(rows) == 1
        assert rows[0][-1].startswith("skipped: workload differs")

    def test_missing_fresh_file_skips(self, dirs):
        baseline, fresh = dirs
        write(baseline, "BENCH_service.json", service_payload(3.0, 20.0))
        rows = check_regression.check_file(
            "BENCH_service.json", 0.5, "HEAD", baseline, fresh
        )
        assert rows[0][-1] == "skipped: benchmark did not run"

    def test_identical_payload_skips_as_not_rerun(self, dirs):
        baseline, fresh = dirs
        payload = service_payload(3.0, 20.0)
        write(baseline, "BENCH_service.json", payload)
        write(fresh, "BENCH_service.json", payload)
        rows = check_regression.check_file(
            "BENCH_service.json", 0.5, "HEAD", baseline, fresh
        )
        assert len(rows) == 1
        assert "identical to baseline" in rows[0][-1]

    def test_missing_baseline_skips(self, dirs):
        baseline, fresh = dirs
        write(fresh, "BENCH_service.json", service_payload(3.0, 20.0))
        rows = check_regression.check_file(
            "BENCH_service.json", 0.5, "HEAD", baseline, fresh
        )
        assert rows[0][-1] == "skipped: no committed baseline"

    def test_parallel_speedup_guarded_by_cpu_count(self, dirs, monkeypatch):
        baseline, fresh = dirs
        payload = {
            "cases": 12,
            "results": {
                "parallel": {"workers": 4, "speedup_vs_sequential": 2.5},
                "warm_cache": {"disk_cache_hit_rate": 1.0},
            },
        }
        shrunk = json.loads(json.dumps(payload))
        shrunk["results"]["parallel"]["speedup_vs_sequential"] = 0.1
        write(baseline, "BENCH_pipeline.json", payload)
        write(fresh, "BENCH_pipeline.json", shrunk)
        monkeypatch.setattr(check_regression.os, "cpu_count", lambda: 1)
        rows = check_regression.check_file(
            "BENCH_pipeline.json", 0.5, "HEAD", baseline, fresh
        )
        statuses = {row[0]: row[-1] for row in rows}
        assert statuses["parallel_speedup"].startswith("skipped: needs more")
        assert statuses["warm_disk_hit_rate"] == "ok"


class TestMain:
    def test_exit_one_on_regression(self, dirs, capsys):
        baseline, fresh = dirs
        write(baseline, "BENCH_service.json", service_payload(3.0, 20.0))
        write(fresh, "BENCH_service.json", service_payload(0.5, 20.0))
        code = check_regression.main(
            [
                "BENCH_service.json",
                "--baseline-dir", str(baseline),
                "--fresh-dir", str(fresh),
            ]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_exit_zero_when_clean(self, dirs, capsys):
        baseline, fresh = dirs
        write(baseline, "BENCH_service.json", service_payload(3.0, 20.0))
        write(fresh, "BENCH_service.json", service_payload(2.9, 19.0))
        code = check_regression.main(
            [
                "BENCH_service.json",
                "--baseline-dir", str(baseline),
                "--fresh-dir", str(fresh),
            ]
        )
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_unknown_file_rejected(self, dirs):
        with pytest.raises(SystemExit):
            check_regression.main(["BENCH_bogus.json"])

    def test_bad_tolerance_rejected(self):
        with pytest.raises(SystemExit):
            check_regression.main(["--tolerance", "0"])

    def test_gates_current_repo_against_head(self, capsys):
        # The real invocation CI runs: committed files vs themselves must
        # never regress (identical ratios).
        code = check_regression.main([])
        out = capsys.readouterr().out
        assert code == 0, out
