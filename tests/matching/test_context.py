"""Unit tests for claim keyword-context extraction (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.matching import ContextConfig, claim_keywords
from repro.text import Document, detect_claims, parse_html

PAPER_HTML = """
<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"""


@pytest.fixture()
def paper_claims():
    return detect_claims(parse_html(PAPER_HTML))


class TestSentenceWeights:
    def test_keywords_weighted_by_tree_distance(self, paper_claims):
        # Claim 'one': 'gambling' is one edge away -> weight 1.0.
        claim_one = next(c for c in paper_claims if c.claimed_value == 1)
        weights = claim_keywords(claim_one, ContextConfig.sentence_only())
        assert weights["gambling"] == pytest.approx(1.0)

    def test_farther_keywords_weigh_less(self, paper_claims):
        # Claim 'three': 'gambling' is two edges away -> weight 0.5.
        claim_three = next(c for c in paper_claims if c.claimed_value == 3)
        weights = claim_keywords(claim_three, ContextConfig.sentence_only())
        assert weights["gambling"] == pytest.approx(0.5)
        assert weights["abuse"] == pytest.approx(1.0)

    def test_disambiguation_between_claims(self, paper_claims):
        """The keyword 'gambling' must be more relevant to claim 'one' than
        to claim 'three' (paper Example 3)."""
        one = next(c for c in paper_claims if c.claimed_value == 1)
        three = next(c for c in paper_claims if c.claimed_value == 3)
        config = ContextConfig.sentence_only()
        assert (
            claim_keywords(one, config)["gambling"]
            > claim_keywords(three, config)["gambling"]
        )

    def test_claim_tokens_excluded(self, paper_claims):
        claim = next(c for c in paper_claims if c.claimed_value == 1)
        weights = claim_keywords(claim, ContextConfig.sentence_only())
        assert "one" not in weights

    def test_stopwords_excluded(self, paper_claims):
        claim = next(c for c in paper_claims if c.claimed_value == 1)
        weights = claim_keywords(claim, ContextConfig.sentence_only())
        assert "were" not in weights and "for" not in weights


class TestContextSources:
    def test_previous_sentence_added(self, paper_claims):
        claim = next(c for c in paper_claims if c.claimed_value == 1)
        config = ContextConfig(
            use_previous_sentence=True,
            use_paragraph_start=False,
            use_synonyms=False,
            use_headlines=False,
        )
        weights = claim_keywords(claim, config)
        # 'lifetime' appears only in the previous sentence.
        assert "lifetime" in weights
        assert weights["lifetime"] == pytest.approx(0.4 * min(
            w for k, w in claim_keywords(
                claim, ContextConfig.sentence_only()
            ).items()
        ))

    def test_headline_added_with_07_weight(self, paper_claims):
        claim = next(c for c in paper_claims if c.claimed_value == 4)
        config = ContextConfig(
            use_previous_sentence=False,
            use_paragraph_start=False,
            use_synonyms=False,
            use_headlines=True,
        )
        weights = claim_keywords(claim, config)
        assert "punishing" in weights  # from the document title
        sentence_only = claim_keywords(claim, ContextConfig.sentence_only())
        m = min(sentence_only.values())
        assert weights["punishing"] == pytest.approx(0.7 * m)

    def test_synonyms_added(self, paper_claims):
        claim = next(c for c in paper_claims if c.claimed_value == 4)
        config = ContextConfig(
            use_previous_sentence=False,
            use_paragraph_start=False,
            use_synonyms=True,
            use_headlines=False,
        )
        weights = claim_keywords(claim, config)
        # 'bans' -> synonym 'suspension(s)' via the lexicon ('ban' group).
        assert any(word in weights for word in ("suspension", "penalty"))

    def test_paragraph_start_added(self):
        html = (
            "<p>The survey covered Python developers. Many answered. "
            "About 40 said yes.</p>"
        )
        claims = detect_claims(parse_html(html))
        config = ContextConfig(
            use_previous_sentence=False,
            use_paragraph_start=True,
            use_synonyms=False,
            use_headlines=False,
        )
        weights = claim_keywords(claims[0], config)
        assert "survey" in weights and "python" in weights

    def test_sentence_only_excludes_everything_else(self, paper_claims):
        claim = next(c for c in paper_claims if c.claimed_value == 4)
        weights = claim_keywords(claim, ContextConfig.sentence_only())
        assert "punishing" not in weights

    def test_context_widens_keyword_set(self, paper_claims):
        claim = next(c for c in paper_claims if c.claimed_value == 1)
        narrow = claim_keywords(claim, ContextConfig.sentence_only())
        wide = claim_keywords(claim, ContextConfig())
        assert set(narrow) < set(wide)
