"""Batched matching front end vs the per-claim oracle.

``keyword_match_batch`` must be *bit-identical* to ``keyword_match``:
same fragments retrieved, same dict insertion order, exactly equal float
scores — across context ablations, hits budgets, score ties, empty
keyword contexts, and the pure-Python (no NumPy) fallback. A corpus-level
regression pins that full runs produce identical verdicts with batching
on and off.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from importlib import import_module

import repro.ir.index as ir_index

# `repro.ir` re-exports the `search` *function*, shadowing the submodule
# attribute — go through the module registry for monkeypatching.
ir_search = import_module("repro.ir.search")
from repro.core.checker import _pool_predicate_fragments
from repro.db import Column, ColumnType, Database, Table
from repro.db.aggregates import AggregateFunction
from repro.db.predicates import Predicate
from repro.db.refs import ColumnRef
from repro.fragments import FragmentIndex, extract_fragments
from repro.fragments.fragments import (
    ColumnFragment,
    FragmentCatalog,
    FunctionFragment,
    PredicateFragment,
)
from repro.ir import InvertedIndex, search
from repro.matching import (
    ContextConfig,
    claim_contexts,
    claim_keywords,
    keyword_match,
    keyword_match_batch,
)
from repro.text import detect_claims, parse_html

PAPER_HTML = """
<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
<p>In 2014 the toll was 2 games. Many players count their suspensions.</p>
"""


def _nfl_database() -> Database:
    """The paper's Figure 2 table (module-local so module-scoped fixtures
    can feed hypothesis tests without function-scoped-fixture hazards)."""
    table = Table(
        "nflsuspensions",
        [
            Column("Name"),
            Column("Team"),
            Column("Games"),
            Column("Category"),
            Column("Year", ColumnType.NUMERIC),
        ],
        [
            ("Ray Rice", "BAL", "2", "domestic violence", 2014),
            ("Sean Payton", "NO", "16", "bounty scandal", 2012),
            ("Art Schlichter", "BAL", "indef", "gambling", 1983),
            ("Stanley Wilson", "CIN", "indef", "substance abuse, repeated offense", 1989),
            ("Dexter Manley", "WAS", "indef", "substance abuse, repeated offense", 1991),
            ("Roy Tarpley", "DAL", "indef", "substance abuse, repeated offense", 1995),
            ("Adam Jones", "CIN", "16", "personal conduct", 2007),
            ("Tanard Jackson", "WAS", "16", "substance abuse", 2012),
            ("Josh Gordon", "CLE", "16", "substance abuse", 2014),
        ],
    )
    return Database("nfl", [table])


@pytest.fixture(scope="module")
def nfl_index():
    return FragmentIndex(extract_fragments(_nfl_database()))


@pytest.fixture(scope="module")
def paper_claims():
    return detect_claims(parse_html(PAPER_HTML))


def assert_scores_identical(oracle, batch):
    """Same fragments, same dict order, exactly equal scores."""
    assert list(oracle.functions.items()) == list(batch.functions.items())
    assert list(oracle.columns.items()) == list(batch.columns.items())
    assert list(oracle.predicates.items()) == list(batch.predicates.items())


class TestBatchEqualsOracle:
    def test_default_config(self, nfl_index, paper_claims):
        oracle = keyword_match(paper_claims, nfl_index)
        batch = keyword_match_batch(paper_claims, nfl_index)
        assert list(oracle) == list(batch)
        for claim in paper_claims:
            assert_scores_identical(oracle[claim], batch[claim])

    @settings(max_examples=40, deadline=None)
    @given(
        previous=st.booleans(),
        paragraph=st.booleans(),
        synonyms=st.booleans(),
        headlines=st.booleans(),
        predicate_hits=st.integers(min_value=0, max_value=40),
        column_hits=st.integers(min_value=0, max_value=5),
    )
    def test_context_ablations_and_budgets(
        self,
        nfl_index,
        paper_claims,
        previous,
        paragraph,
        synonyms,
        headlines,
        predicate_hits,
        column_hits,
    ):
        """Property: bit-identity holds across the whole ContextConfig
        ladder and any retrieval budget."""
        config = ContextConfig(previous, paragraph, synonyms, headlines)
        oracle = keyword_match(
            paper_claims,
            nfl_index,
            config,
            predicate_hits=predicate_hits,
            column_hits=column_hits,
        )
        batch = keyword_match_batch(
            paper_claims,
            nfl_index,
            config,
            predicate_hits=predicate_hits,
            column_hits=column_hits,
        )
        for claim in paper_claims:
            assert_scores_identical(oracle[claim], batch[claim])

    @settings(max_examples=25, deadline=None)
    @given(
        words=st.lists(
            st.sampled_from(
                ["gambling", "games", "suspended", "team", "season", "ban"]
            ),
            min_size=0,
            max_size=4,
        ),
        value=st.integers(min_value=1, max_value=9),
    )
    def test_generated_sentences(self, nfl_index, words, value):
        """Property: random claim sentences built from domain words match
        identically (including claims with empty keyword contexts)."""
        sentence = f"There were {value} {' '.join(words)}.".replace("  ", " ")
        claims = detect_claims(parse_html(f"<p>{sentence}</p>"))
        oracle = keyword_match(claims, nfl_index)
        batch = keyword_match_batch(claims, nfl_index)
        for claim in claims:
            assert_scores_identical(oracle[claim], batch[claim])

    def test_empty_keyword_claim(self, nfl_index):
        # 'There were 5.' leaves no context keywords at all.
        claims = detect_claims(parse_html("<p>There were 5.</p>"))
        assert claims
        config = ContextConfig.sentence_only()
        oracle = keyword_match(claims, nfl_index, config)
        batch = keyword_match_batch(claims, nfl_index, config)
        for claim in claims:
            assert claim_keywords(claim, config) == {}
            assert_scores_identical(oracle[claim], batch[claim])
            # Scaffolding survives: all functions plus the star column.
            assert len(batch[claim].functions) == 8
            assert all(f.is_star for f in batch[claim].columns)
            assert batch[claim].predicates == {}

    def test_no_claims(self, nfl_index):
        assert keyword_match_batch([], nfl_index) == {}


class TestTieDeterminism:
    @pytest.fixture()
    def tied_catalog(self):
        """Many predicate fragments with *identical* keyword sets: every
        retrieval score ties exactly."""
        column = ColumnRef("t", "category")
        predicates = [
            PredicateFragment(
                keywords=("gambling", "bet"),
                predicate=Predicate(column, f"value-{i}"),
            )
            for i in range(8)
        ]
        return FragmentCatalog(
            functions=[
                FunctionFragment(
                    keywords=("count",), function=AggregateFunction.COUNT
                )
            ],
            columns=[ColumnFragment(keywords=(), column=ColumnRef("t", "*"))],
            predicates=predicates,
        )

    def test_ties_break_by_catalog_position(self, tied_catalog):
        index = FragmentIndex(tied_catalog)
        scores = index.retrieve({"gambling": 1.0}, predicate_hits=3)
        retrieved = list(scores.predicates)
        # Equal scores -> first three fragments in catalog order.
        assert retrieved == tied_catalog.predicates[:3]
        values = list(scores.predicates.values())
        assert values[0] == values[1] == values[2] > 0

    def test_batch_agrees_on_ties(self, tied_catalog, paper_claims):
        index = FragmentIndex(tied_catalog)
        # The 'gambling' claim context produces exact score ties.
        oracle = keyword_match(paper_claims, index, predicate_hits=5)
        batch = keyword_match_batch(paper_claims, index, predicate_hits=5)
        for claim in paper_claims:
            assert_scores_identical(oracle[claim], batch[claim])

    def test_search_tie_break_is_doc_id(self):
        index = InvertedIndex()
        for name in ("a", "b", "c", "d"):
            index.add(name, text="red blue")
        hits = search(index, {"red": 1.0}, top_k=2)
        assert [hit.payload for hit in hits] == ["a", "b"]
        full = search(index, {"red": 1.0})
        assert [hit.payload for hit in full] == ["a", "b", "c", "d"]


class TestPythonFallback:
    def test_fallback_matches_numpy_results(self, paper_claims, monkeypatch):
        with_numpy = keyword_match_batch(
            paper_claims, FragmentIndex(extract_fragments(_nfl_database()))
        )

        monkeypatch.setattr(ir_index, "_np", None)
        monkeypatch.setattr(ir_search, "_np", None)
        assert not ir_index.numpy_available()
        fallback_index = FragmentIndex(extract_fragments(_nfl_database()))
        compiled = fallback_index.compiled()
        assert isinstance(compiled.predicates.indptr, list)
        fallback = keyword_match_batch(paper_claims, fallback_index)

        for claim in paper_claims:
            assert_scores_identical(with_numpy[claim], fallback[claim])

    def test_fallback_matches_oracle(self, paper_claims, monkeypatch):
        monkeypatch.setattr(ir_index, "_np", None)
        monkeypatch.setattr(ir_search, "_np", None)
        index = FragmentIndex(extract_fragments(_nfl_database()))
        oracle = keyword_match(paper_claims, index)
        batch = keyword_match_batch(paper_claims, index)
        for claim in paper_claims:
            assert_scores_identical(oracle[claim], batch[claim])


class TestContextCache:
    @settings(max_examples=20, deadline=None)
    @given(
        previous=st.booleans(),
        paragraph=st.booleans(),
        synonyms=st.booleans(),
        headlines=st.booleans(),
    )
    def test_shared_cache_changes_nothing(
        self, paper_claims, previous, paragraph, synonyms, headlines
    ):
        config = ContextConfig(previous, paragraph, synonyms, headlines)
        shared = claim_contexts(paper_claims, config)
        individual = [claim_keywords(claim, config) for claim in paper_claims]
        assert shared == individual


class TestAlignedArrays:
    def test_batch_ids_are_catalog_positions(self, nfl_index, paper_claims):
        catalog = nfl_index.catalog
        for scores in keyword_match_batch(paper_claims, nfl_index).values():
            assert scores.function_ids == list(range(len(catalog.functions)))
            for fragment, position in zip(scores.columns, scores.column_ids):
                assert catalog.columns[position] is fragment
            for fragment, position in zip(
                scores.predicates, scores.predicate_ids
            ):
                assert catalog.predicates[position] is fragment

    def test_pooling_keeps_ids_aligned(self, nfl_index, paper_claims):
        catalog = nfl_index.catalog
        scores = keyword_match_batch(paper_claims, nfl_index)
        _pool_predicate_fragments(scores)
        for relevance in scores.values():
            assert len(relevance.predicate_ids) == len(relevance.predicates)
            for fragment, position in zip(
                relevance.predicates, relevance.predicate_ids
            ):
                assert catalog.predicates[position] is fragment

    def test_value_arrays_follow_dict_order(self, nfl_index, paper_claims):
        scores = keyword_match_batch(paper_claims, nfl_index)
        for relevance in scores.values():
            fn_values, col_values, pred_values = relevance.value_arrays()
            assert fn_values == list(relevance.functions.values())
            assert col_values == list(relevance.columns.values())
            assert pred_values == list(relevance.predicates.values())


class TestCorpusRegression:
    @pytest.mark.needs_numpy
    def test_run_corpus_identical_with_batching_on_and_off(self):
        from repro.core.config import AggCheckerConfig
        from repro.corpus.generator import CorpusConfig, generate_corpus
        from repro.harness import run_corpus

        corpus = generate_corpus(CorpusConfig(n_articles=3))
        on = run_corpus(corpus, AggCheckerConfig(batch_matching=True))
        off = run_corpus(corpus, AggCheckerConfig(batch_matching=False))

        def signature(run):
            return [
                [
                    (
                        verdict.status.value,
                        str(verdict.top_query),
                        verdict.top_result,
                        verdict.claim.claimed_value,
                    )
                    for verdict in result.report.verdicts
                ]
                for result in run.results
            ]

        assert signature(on) == signature(off)
        assert on.metrics.recall == off.metrics.recall
        assert on.metrics.precision == off.metrics.precision

    def test_checker_reuses_compiled_index(self, nfl_index):
        from repro.core.checker import AggChecker

        checker = AggChecker(_nfl_database())
        compiled = checker.index.compiled()
        assert checker.index.compiled() is compiled
