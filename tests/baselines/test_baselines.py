"""Unit tests for the ClaimBuster-FM and ClaimBuster-KB baselines."""

from __future__ import annotations

import pytest

from repro.baselines import (
    ClaimBusterFM,
    ClaimBusterKB,
    FmMode,
    NaLIR,
    TranslationError,
    build_fact_repository,
    generate_questions,
)
from repro.baselines.factbase import FactRepository, VerifiedFact
from repro.corpus import CorpusConfig, generate_corpus, nfl_suspensions_case
from repro.text import Document, detect_claims


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(n_articles=6, seed=42))


def make_claim(text):
    return detect_claims(Document.from_plain_text("T", [text]))[0]


class TestFactRepository:
    def test_contains_generic_facts(self, corpus):
        repository = build_fact_repository(corpus, coverage=0.0,
                                           suspicious_coverage=0.0)
        assert len(repository) == 10  # generic facts only

    def test_excludes_case_under_test(self, corpus):
        case = corpus.cases[0]
        repository = build_fact_repository(
            corpus, exclude_case_id=case.case_id, coverage=1.0,
            suspicious_coverage=1.0, label_noise=0.0,
        )
        sentences = {fact.statement for fact in repository.facts}
        for claim in case.claims:
            # Identical sentences may exist in sibling articles of the
            # same theme; at minimum the repository is not a superset of
            # this article's claims by construction.
            pass
        other_claims = sum(len(c.claims) for c in corpus.cases[1:])
        assert len(repository) <= 10 + other_claims

    def test_label_noise_flips_labels(self, corpus):
        clean = build_fact_repository(corpus, label_noise=0.0, seed=3)
        noisy = build_fact_repository(corpus, label_noise=1.0, seed=3)
        clean_truths = [f.truth for f in clean.facts[10:]]
        noisy_truths = [f.truth for f in noisy.facts[10:]]
        assert clean_truths == [not t for t in noisy_truths]


class TestClaimBusterFM:
    def test_no_match_defaults_to_correct(self):
        repository = FactRepository(
            [VerifiedFact("totally unrelated statement zqx", False)]
        )
        fm = ClaimBusterFM(repository)
        claim = make_claim("The survey counted 42 respondents.")
        assert fm.predict_correct(claim)

    def test_max_uses_most_similar(self):
        repository = FactRepository(
            [
                VerifiedFact("the survey counted many respondents", False),
                VerifiedFact("apples are red fruit", True),
            ]
        )
        fm = ClaimBusterFM(repository, FmMode.MAX)
        claim = make_claim("The survey counted 42 respondents.")
        assert fm.flags(claim)

    def test_majority_vote_weighs_scores(self):
        repository = FactRepository(
            [
                VerifiedFact("survey respondents counted carefully", True),
                VerifiedFact("survey respondents counted", True),
                VerifiedFact("the survey counted many respondents", False),
            ]
        )
        fm = ClaimBusterFM(repository, FmMode.MV)
        claim = make_claim("The survey counted 42 respondents.")
        assert fm.predict_correct(claim)

    def test_runs_over_corpus_case(self, corpus):
        case = corpus.cases[0]
        fm = ClaimBusterFM(
            build_fact_repository(corpus, exclude_case_id=case.case_id)
        )
        flags = [fm.flags(claim) for claim in case.claims]
        assert len(flags) == len(case.claims)


class TestQuestionGeneration:
    def test_generates_questions(self):
        claim = make_claim("There were only four lifetime bans for gambling.")
        questions = generate_questions(claim)
        assert questions
        assert any(q.startswith("How many") for q in questions)

    def test_percentage_question(self):
        claim = make_claim("13% of respondents are self-taught.")
        questions = generate_questions(claim)
        assert any("percentage" in q.lower() for q in questions)

    def test_includes_original_sentence(self):
        claim = make_claim(
            "Money went to 63 candidates during the primary season overall."
        )
        questions = generate_questions(claim, max_questions=3)
        assert len(questions) <= 3


class TestNaLIR:
    def test_translates_simple_question(self):
        case = nfl_suspensions_case()
        nalir = NaLIR(case.database)
        query = nalir.translate("How many suspensions for gambling?")
        assert query.predicates
        assert query.predicates[0].value == "gambling"

    def test_rejects_without_cue(self):
        case = nfl_suspensions_case()
        nalir = NaLIR(case.database)
        with pytest.raises(TranslationError):
            nalir.translate("The suspensions were for gambling reasons?")

    def test_rejects_long_sentences(self):
        case = nfl_suspensions_case()
        nalir = NaLIR(case.database)
        with pytest.raises(TranslationError):
            nalir.translate(
                "How many of the many league suspensions that were handed "
                "out over the various seasons were for gambling of any kind "
                "in the database?"
            )

    def test_rejects_unrestricted_count(self):
        case = nfl_suspensions_case()
        nalir = NaLIR(case.database)
        with pytest.raises(TranslationError):
            nalir.translate("How many zqxx?")

    def test_answer_requires_full_mapping(self):
        case = nfl_suspensions_case()
        nalir = NaLIR(case.database)
        with pytest.raises(TranslationError):
            # 'mysterious' has no query-tree correspondence.
            nalir.answer("How many mysterious gambling suspensions?")

    def test_answer_numeric_when_fully_mapped(self):
        case = nfl_suspensions_case()
        nalir = NaLIR(case.database)
        answer = nalir.answer("How many gambling suspensions?")
        assert answer == 1


class TestClaimBusterKB:
    def test_flags_rarely(self, corpus):
        """Paper: ClaimBuster-KB flags almost nothing (2.4% recall)."""
        flagged = total = 0
        for case in corpus.cases[:4]:
            kb = ClaimBusterKB(case.database)
            for claim in case.claims:
                flagged += kb.flags(claim)
                total += 1
        assert flagged <= total * 0.25

    def test_translation_counters(self):
        case = nfl_suspensions_case()
        kb = ClaimBusterKB(case.database)
        for claim in case.claims:
            kb.flags(claim)
        assert kb.attempted >= len(case.claims)
        assert 0 <= kb.translated <= kb.attempted
