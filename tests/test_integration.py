"""End-to-end integration tests across the whole pipeline."""

from __future__ import annotations

import pytest

from repro.core import AggChecker, VerdictStatus
from repro.corpus import CorpusConfig, generate_corpus
from repro.db import EngineConfig, ExecutionMode
from repro.core.config import AggCheckerConfig
from repro.harness import run_case


@pytest.fixture(scope="module")
def mini_corpus():
    return generate_corpus(CorpusConfig(n_articles=4, seed=1234))


class TestPipelineOnGeneratedCorpus:
    def test_every_case_produces_verdicts(self, mini_corpus):
        for case in mini_corpus.cases:
            result = run_case(case)
            assert len(result.evaluations) == len(case.ground_truth)
            for evaluation in result.evaluations:
                assert evaluation.verdict.status in VerdictStatus

    def test_execution_modes_agree_on_verdicts(self, mini_corpus):
        """Naive and merged+cached engines must produce identical
        verdicts — the optimizations are purely about speed."""
        case = mini_corpus.cases[0]
        default = run_case(case)
        naive = run_case(
            case, AggCheckerConfig(engine=EngineConfig(mode=ExecutionMode.NAIVE))
        )
        for a, b in zip(default.evaluations, naive.evaluations):
            assert a.verdict.status == b.verdict.status
            assert a.verdict.top_query == b.verdict.top_query

    def test_detection_and_truth_alignment(self, mini_corpus):
        for case in mini_corpus.cases:
            for claim, truth in zip(case.claims, case.ground_truth):
                assert claim.claimed_value == pytest.approx(truth.claimed_value)

    def test_checker_reusable_across_documents(self, mini_corpus):
        """One AggChecker instance can verify several documents against
        the same database, reusing its fragment index and result cache."""
        case = mini_corpus.cases[0]
        checker = AggChecker(case.database)
        first = checker.check_document(case.document)
        physical_after_first = checker.engine.stats.physical_queries
        second = checker.check_document(case.document)
        # The persistent cache absorbs most repeated evaluation work.
        assert (
            checker.engine.stats.physical_queries
            <= physical_after_first * 1.5 + 5
        )
        assert [v.status for v in first.verdicts] == [
            v.status for v in second.verdicts
        ]

    def test_priors_concentrate_on_theme(self, mini_corpus):
        """After EM, the document's dominant characteristics carry higher
        prior mass than uniform."""
        case = mini_corpus.cases[0]
        result = run_case(case)
        priors = result.report.priors
        assert priors is not None
        from collections import Counter

        functions = Counter(
            truth.query.aggregate.function for truth in case.ground_truth
        )
        dominant, count = functions.most_common(1)[0]
        if count >= len(case.ground_truth) * 0.6:
            uniform = 1.0 / len(priors.functions)
            assert priors.functions[dominant] > uniform
