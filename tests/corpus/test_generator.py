"""Unit tests for the synthetic corpus generator."""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, generate_corpus, nfl_suspensions_case
from repro.corpus.articles import ArticleBuilder, ArticleConfig
from repro.corpus.datasets import build_database
from repro.corpus.themes import THEMES
from repro.db.executor import execute_query
from repro.nlp.numbers import rounds_to


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(CorpusConfig(n_articles=8, seed=99))


class TestGenerateCorpus:
    def test_deterministic(self):
        first = generate_corpus(CorpusConfig(n_articles=3, seed=5))
        second = generate_corpus(CorpusConfig(n_articles=3, seed=5))
        assert [c.html for c in first.cases] == [c.html for c in second.cases]

    def test_seed_changes_output(self):
        first = generate_corpus(CorpusConfig(n_articles=3, seed=5))
        second = generate_corpus(CorpusConfig(n_articles=3, seed=6))
        assert [c.html for c in first.cases] != [c.html for c in second.cases]

    def test_requested_article_count(self, small_corpus):
        assert len(small_corpus) == 8

    def test_claims_align_with_detection(self, small_corpus):
        for case in small_corpus.cases:
            claims = case.claims  # raises CorpusError on misalignment
            assert len(claims) == len(case.ground_truth)

    def test_ground_truth_queries_evaluate(self, small_corpus):
        """Every ground-truth query must evaluate to its recorded result."""
        for case in small_corpus.cases:
            for truth in case.ground_truth:
                result = execute_query(case.database, truth.query)
                assert result == pytest.approx(truth.true_result)

    def test_correct_labels_are_sound(self, small_corpus):
        """Correct claims round to the claimed value; hedged claims are
        the (labelled) exception."""
        for case in small_corpus.cases:
            for truth in case.ground_truth:
                matches = rounds_to(truth.true_result, truth.claimed_value)
                if not truth.is_correct:
                    assert not matches, truth.sql
                elif not truth.claimed_text.startswith(("more than", "well over")):
                    assert matches, truth.sql

    def test_erroneous_labels_never_round(self, small_corpus):
        for case in small_corpus.cases:
            for truth in case.ground_truth:
                if not truth.is_correct:
                    assert not rounds_to(truth.true_result, truth.claimed_value)

    def test_statistics_helpers(self, small_corpus):
        assert small_corpus.total_claims >= 8 * 3
        histogram = small_corpus.predicate_histogram()
        assert set(histogram) <= {0, 1, 2}
        coverage = small_corpus.characteristic_coverage(3)
        assert set(coverage) == {"function", "column", "predicates"}

    def test_full_corpus_statistics_match_paper(self):
        corpus = generate_corpus()
        assert len(corpus) == 53
        assert 300 <= corpus.total_claims <= 520
        assert 0.05 <= corpus.error_rate <= 0.25
        assert 8 <= corpus.cases_with_errors <= 30
        histogram = corpus.predicate_histogram()
        assert histogram[1] > histogram[2]


class TestArticleBuilder:
    def test_build_single_article(self):
        import random

        rng = random.Random(3)
        theme = THEMES[0]
        database = build_database(theme, rng)
        builder = ArticleBuilder(theme, database, rng, ArticleConfig())
        case = builder.build("t1")
        assert case.claims
        assert "<title>" in case.html

    def test_context_modes_recorded(self, small_corpus):
        modes = {
            truth.context_mode
            for case in small_corpus.cases
            for truth in case.ground_truth
        }
        assert "sentence" in modes
        assert modes <= {"sentence", "headline", "paragraph", "implicit"}


class TestBuiltinCase:
    def test_fresh_case_all_correct(self):
        case = nfl_suspensions_case()
        assert case.erroneous_count == 0
        assert [t.claimed_value for t in case.ground_truth] == [4, 3, 1]

    def test_stale_case_has_error(self):
        case = nfl_suspensions_case(stale=True)
        assert case.erroneous_count == 1
        assert not case.ground_truth[0].is_correct
        # The stale database has five lifetime bans.
        result = execute_query(case.database, case.ground_truth[0].query)
        assert result == 5

    def test_builtin_aligns(self):
        case = nfl_suspensions_case()
        assert len(case.claims) == 3
