"""Unit and property tests for the document priors Θ."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import AggregateFunction, AggregateSpec, ColumnRef, Predicate, STAR
from repro.db.query import SimpleAggregateQuery
from repro.fragments import extract_fragments
from repro.model import Priors

GAMES = ColumnRef("nflsuspensions", "Games")
CATEGORY = ColumnRef("nflsuspensions", "Category")


def count_star(*predicates):
    return SimpleAggregateQuery(
        AggregateSpec(AggregateFunction.COUNT, STAR), tuple(predicates)
    )


@pytest.fixture()
def catalog(nfl_db):
    return extract_fragments(nfl_db)


class TestUniform:
    def test_functions_sum_to_one(self, catalog):
        priors = Priors.uniform(catalog)
        assert sum(priors.functions.values()) == pytest.approx(1.0)

    def test_columns_sum_to_one(self, catalog):
        priors = Priors.uniform(catalog)
        assert sum(priors.columns.values()) == pytest.approx(1.0)

    def test_restrictions_uniform(self, catalog):
        priors = Priors.uniform(catalog)
        values = set(priors.restrictions.values())
        assert len(values) == 1


class TestUpdate:
    def test_counts_reflected(self, catalog):
        priors = Priors.uniform(catalog)
        queries = [
            count_star(Predicate(GAMES, "indef")),
            count_star(Predicate(GAMES, "indef"), Predicate(CATEGORY, "gambling")),
            count_star(Predicate(GAMES, "16")),
        ]
        updated = priors.update_from(queries)
        # All three queries are counts: Count prior dominates.
        assert updated.functions[AggregateFunction.COUNT] == max(
            updated.functions.values()
        )
        # Games restricted 3x, Category 1x.
        assert updated.restrictions[GAMES] > updated.restrictions[CATEGORY]

    def test_paper_convergence_pattern(self, catalog):
        """Table 2 of the paper: priors concentrate on the document theme."""
        priors = Priors.uniform(catalog)
        theme = [count_star(Predicate(GAMES, "indef")) for _ in range(11)]
        other = [count_star(Predicate(CATEGORY, "gambling")) for _ in range(2)]
        updated = priors.update_from(theme + other)
        assert updated.restrictions[GAMES] == pytest.approx(
            (11 + 0.5) / (13 + 1.0)
        )

    def test_smoothing_keeps_positive(self, catalog):
        priors = Priors.uniform(catalog).update_from(
            [count_star(Predicate(GAMES, "indef"))]
        )
        assert all(p > 0 for p in priors.functions.values())
        assert all(p > 0 for p in priors.columns.values())
        assert all(0 < p < 1 for p in priors.restrictions.values())

    def test_functions_still_sum_to_one(self, catalog):
        priors = Priors.uniform(catalog).update_from(
            [count_star(Predicate(GAMES, "indef"))] * 5
        )
        assert sum(priors.functions.values()) == pytest.approx(1.0)

    def test_empty_update(self, catalog):
        priors = Priors.uniform(catalog).update_from([])
        assert sum(priors.functions.values()) == pytest.approx(1.0)


class TestDistance:
    def test_zero_to_self(self, catalog):
        priors = Priors.uniform(catalog)
        assert priors.distance(priors) == 0.0

    def test_moves_after_update(self, catalog):
        priors = Priors.uniform(catalog)
        updated = priors.update_from([count_star(Predicate(GAMES, "indef"))] * 9)
        assert priors.distance(updated) > 0.1

    def test_symmetric(self, catalog):
        a = Priors.uniform(catalog)
        b = a.update_from([count_star()])
        assert a.distance(b) == pytest.approx(b.distance(a))


class TestAccessors:
    def test_unknown_keys_get_min_prior(self, catalog):
        priors = Priors.uniform(catalog)
        unknown = ColumnRef("zzz", "zzz")
        assert priors.column_prior(unknown) > 0
        assert 0 < priors.restriction_prior(unknown) < 1


@settings(max_examples=30, deadline=None)
@given(n_games=st.integers(min_value=0, max_value=20), n_cat=st.integers(min_value=0, max_value=20))
def test_restriction_priors_monotone_in_counts(n_games, n_cat):
    """Property: more restrictions on a column -> higher prior."""
    from repro.db import Column, ColumnType, Database, Table

    table = Table(
        "nflsuspensions",
        [Column("Games"), Column("Category"), Column("Year", ColumnType.NUMERIC)],
        [("indef", "gambling", 2000)],
    )
    catalog = extract_fragments(Database("nfl", [table]))
    priors = Priors.uniform(catalog)
    queries = [count_star(Predicate(GAMES, "indef"))] * n_games + [
        count_star(Predicate(CATEGORY, "gambling"))
    ] * n_cat
    updated = priors.update_from(queries)
    if n_games > n_cat:
        assert updated.restrictions[GAMES] > updated.restrictions[CATEGORY]
    elif n_games < n_cat:
        assert updated.restrictions[GAMES] < updated.restrictions[CATEGORY]
    else:
        assert updated.restrictions[GAMES] == pytest.approx(
            updated.restrictions[CATEGORY]
        )
