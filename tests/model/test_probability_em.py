"""Unit tests for claim distributions and the EM loop."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")  # the model layer has no pure-Python fallback

from repro.db import AggregateFunction, QueryEngine, parse_query
from repro.fragments import FragmentIndex, extract_fragments
from repro.matching import keyword_match
from repro.model import (
    EmConfig,
    Priors,
    build_candidates,
    compute_distribution,
    query_and_learn,
)
from repro.model.probability import EvaluationOutcome
from repro.text import detect_claims, parse_html

PAPER_HTML = """
<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"""


# Module-scoped fixtures cannot use the function-scoped nfl_db fixture;
# rebuild the database here instead.
@pytest.fixture(scope="module")
def module_db():
    from tests.conftest import NFL_ROWS
    from repro.db import Column, ColumnType, Database, Table

    table = Table(
        "nflsuspensions",
        [
            Column("Name"),
            Column("Team"),
            Column("Games"),
            Column("Category"),
            Column("Year", ColumnType.NUMERIC),
        ],
        NFL_ROWS,
    )
    return Database("nfl", [table])


@pytest.fixture(scope="module")
def pipeline(module_db):
    catalog = extract_fragments(module_db)
    index = FragmentIndex(catalog)
    claims = detect_claims(parse_html(PAPER_HTML))
    scores = keyword_match(claims, index)
    spaces = {c: build_candidates(c, scores[c]) for c in claims}
    engine = QueryEngine(module_db)
    return module_db, catalog, claims, spaces, engine


class TestComputeDistribution:
    def test_probabilities_sum_to_one(self, pipeline):
        _, catalog, claims, spaces, _ = pipeline
        space = spaces[claims[0]]
        distribution = compute_distribution(space, Priors.uniform(catalog))
        assert distribution.probabilities.sum() == pytest.approx(1.0)

    def test_evaluation_boosts_matching_candidates(self, pipeline):
        db, catalog, claims, spaces, engine = pipeline
        claim_three = next(c for c in claims if c.claimed_value == 3)
        space = spaces[claim_three]
        results = engine.evaluate(space.queries)
        outcome = EvaluationOutcome.from_results(space, results)
        without = compute_distribution(space, None, None)
        with_eval = compute_distribution(space, None, outcome)
        truth = parse_query(
            "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
            "AND Category = 'substance abuse, repeated offense'",
            db,
        )
        rank_without = without.rank_of(truth)
        rank_with = with_eval.rank_of(truth)
        assert rank_with is not None and rank_without is not None
        assert rank_with < rank_without

    def test_unevaluated_candidates_get_zero_mass(self, pipeline):
        _, _, claims, spaces, engine = pipeline
        space = spaces[claims[0]]
        # Evaluate only the first 10 candidates.
        results = engine.evaluate(space.queries[:10])
        outcome = EvaluationOutcome.from_results(space, results)
        distribution = compute_distribution(space, None, outcome)
        assert distribution.probabilities[10:].sum() == pytest.approx(0.0)

    def test_priors_shift_distribution(self, pipeline):
        _, catalog, claims, spaces, _ = pipeline
        space = spaces[claims[0]]
        uniform = Priors.uniform(catalog)
        count_heavy = uniform.update_from(
            [q for q in space.queries if q.aggregate.function is AggregateFunction.COUNT][:5]
        )
        base = compute_distribution(space, uniform)
        shifted = compute_distribution(space, count_heavy)
        top = shifted.top_query()
        assert top is not None
        assert not np.allclose(base.probabilities, shifted.probabilities)

    def test_top_queries_sorted(self, pipeline):
        _, catalog, claims, spaces, _ = pipeline
        distribution = compute_distribution(
            spaces[claims[0]], Priors.uniform(catalog)
        )
        top = distribution.top_queries(10)
        probabilities = [p for _, p in top]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_probability_correct_between_0_and_1(self, pipeline):
        _, catalog, claims, spaces, engine = pipeline
        space = spaces[claims[0]]
        results = engine.evaluate(space.queries)
        outcome = EvaluationOutcome.from_results(space, results)
        distribution = compute_distribution(
            space, Priors.uniform(catalog), outcome
        )
        assert 0.0 <= distribution.probability_correct() <= 1.0


class TestQueryAndLearn:
    def test_paper_example_resolves(self, pipeline):
        db, catalog, claims, spaces, engine = pipeline
        result = query_and_learn(spaces, catalog, engine)
        claim_four = next(c for c in claims if c.claimed_value == 4)
        top = result.distributions[claim_four].top_query()
        truth = parse_query(
            "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'", db
        )
        assert top == truth

    def test_priors_learn_document_theme(self, pipeline):
        db, catalog, claims, spaces, engine = pipeline
        result = query_and_learn(spaces, catalog, engine)
        priors = result.priors
        assert priors is not None
        # All claims are counts: Count prior should dominate.
        assert priors.functions[AggregateFunction.COUNT] == max(
            priors.functions.values()
        )

    def test_ablation_no_evaluations(self, pipeline):
        _, catalog, claims, spaces, engine = pipeline
        result = query_and_learn(
            spaces, catalog, engine, EmConfig(use_evaluations=False)
        )
        for distribution in result.distributions.values():
            assert distribution.outcome is None

    def test_ablation_no_priors_single_iteration(self, pipeline):
        _, catalog, claims, spaces, engine = pipeline
        result = query_and_learn(
            spaces, catalog, engine, EmConfig(use_priors=False)
        )
        assert result.iterations == 1
        assert result.priors is None

    def test_full_model_at_least_as_good_as_keyword_only(self, pipeline):
        db, catalog, claims, spaces, engine = pipeline
        truths = {
            4: "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'",
            3: "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
            "AND Category = 'substance abuse, repeated offense'",
            1: "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
            "AND Category = 'gambling'",
        }
        full = query_and_learn(spaces, catalog, engine)
        keyword_only = query_and_learn(
            spaces,
            catalog,
            engine,
            EmConfig(use_priors=False, use_evaluations=False),
        )

        def hits(result, k):
            total = 0
            for claim in claims:
                truth = parse_query(truths[int(claim.claimed_value)], db)
                rank = result.distributions[claim].rank_of(truth)
                if rank is not None and rank <= k:
                    total += 1
            return total

        assert hits(full, 5) >= hits(keyword_only, 5)
        # Evaluation disambiguates: the exact ground truth reaches the
        # top-5 for most claims (top-1 may prefer a simpler query whose
        # result coincides, as in the paper's 58% top-1 coverage).
        assert hits(full, 1) >= 1
        assert hits(full, 5) >= 2

    def test_iterations_bounded(self, pipeline):
        _, catalog, _, spaces, engine = pipeline
        result = query_and_learn(
            spaces, catalog, engine, EmConfig(max_iterations=3)
        )
        assert 1 <= result.iterations <= 3

    def test_scope_budget_limits_evaluations(self, pipeline):
        from repro.evalexec import ScopeConfig

        _, catalog, claims, spaces, engine = pipeline
        config = EmConfig(scope=ScopeConfig(max_evaluations_per_claim=50))
        result = query_and_learn(spaces, catalog, engine, config)
        for distribution in result.distributions.values():
            if distribution.outcome is not None:
                assert distribution.outcome.evaluated.sum() <= 50 * 3


def reference_outcome(space, results, scoped=None):
    """The pre-vectorization per-candidate loop, kept as a test oracle."""
    from repro.nlp.numbers import rounds_to

    claimed = space.claim.claimed_value
    n = len(space)
    evaluated = np.zeros(n, dtype=bool)
    matches = np.zeros(n, dtype=bool)
    missing = object()
    for i, query in enumerate(space.queries):
        if scoped is not None and query not in scoped:
            continue
        value = results.get(query, missing)
        if value is missing:
            continue
        evaluated[i] = True
        matches[i] = rounds_to(value, claimed)
    return evaluated, matches


class TestFromResultsVectorized:
    """The bulk-indexed ``from_results`` must match the per-candidate loop."""

    def _assert_matches_reference(self, space, results, scoped=None):
        outcome = EvaluationOutcome.from_results(space, results, scoped)
        evaluated, matches = reference_outcome(space, results, scoped)
        assert np.array_equal(outcome.evaluated, evaluated)
        assert np.array_equal(outcome.matches, matches)

    def test_full_pool(self, pipeline):
        _, _, claims, spaces, engine = pipeline
        for claim in claims:
            space = spaces[claim]
            results = engine.evaluate(space.queries)
            self._assert_matches_reference(space, results)

    def test_partial_pool_and_scoped_subset(self, pipeline):
        _, _, claims, spaces, engine = pipeline
        space = spaces[claims[0]]
        results = engine.evaluate(space.queries[::3])
        self._assert_matches_reference(space, results)
        scoped = set(space.queries[::5]) | {space.queries[1]}
        self._assert_matches_reference(space, results, scoped)

    def test_scoped_query_outside_space_ignored(self, pipeline):
        db, _, claims, spaces, engine = pipeline
        space = spaces[claims[0]]
        foreign = parse_query(
            "SELECT Sum(Year) FROM nflsuspensions WHERE Team = 'BAL'", db
        )
        results = dict(engine.evaluate(space.queries[:20]))
        results[foreign] = 123.0
        self._assert_matches_reference(space, results, set(space.queries[:20]) | {foreign})

    def test_odd_values(self, pipeline):
        _, _, claims, spaces, _ = pipeline
        space = spaces[claims[0]]
        values = [None, float("nan"), 4, 4.0, -1, float("inf"), 3.9999]
        results = {
            query: values[i % len(values)]
            for i, query in enumerate(space.queries)
        }
        self._assert_matches_reference(space, results)

    def test_empty_results(self, pipeline):
        _, _, claims, spaces, _ = pipeline
        space = spaces[claims[0]]
        self._assert_matches_reference(space, {})
        self._assert_matches_reference(space, {}, set())

    def test_position_index_covers_space(self, pipeline):
        _, _, claims, spaces, _ = pipeline
        space = spaces[claims[0]]
        index = space.position_index()
        assert len(index) == len(space)
        assert index is space.position_index()  # cached
        for position, query in enumerate(space.queries):
            assert index[query] == position
