"""Bit-identity of the factorized space evaluation path vs the per-query oracle.

The per-query path (materialize every candidate, ``QueryEngine.evaluate``,
``EvaluationOutcome.from_results``) is the reference semantics. Every test
here asserts that the zero-materialization path
(``QueryEngine.evaluate_space`` + ``EvaluationOutcome.from_value_ids``)
produces identical verdicts, probabilities, evaluated/match vectors, and
per-candidate values — across all three execution modes, both physical
backends, full and budgeted evaluation scopes, ratio and
conditional-probability candidates, and empty-group cells. One test
monkeypatches the NumPy guard to exercise the pure-Python gather fallback.
"""

from __future__ import annotations

from dataclasses import fields

import pytest

np = pytest.importorskip("numpy")  # the model layer has no pure-Python fallback
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.db.gather as gather
from repro.db import Column, ColumnType, Database, QueryEngine, Table
from repro.db.columnar import ExecutionBackend
from repro.db.engine import EngineConfig, EngineStats, ExecutionMode
from repro.db.gather import SpaceResults, ValueTable
from repro.evalexec import ScopeConfig, refine_by_eval, refine_by_eval_space
from repro.fragments import FragmentIndex, extract_fragments
from repro.matching import keyword_match
from repro.model import EmConfig, build_candidates, compute_distribution, query_and_learn
from repro.model.candidates import CandidateConfig
from repro.model.probability import EvaluationOutcome
from repro.core.verdict import make_verdict
from repro.fragments.indexer import RelevanceScores
from repro.text import Document, detect_claims

from tests.conftest import NFL_ROWS
from tests.db.strategies import nullheavy_databases, small_databases

MODES = list(ExecutionMode)
BACKENDS = list(ExecutionBackend)

#: EngineStats fields that must match between the two paths. Excluded:
#: ``query_seconds`` (wall clock), ``gathered_candidates`` (by definition
#: only the space path counts them), and ``queries_requested`` (the space
#: path counts logical candidate evaluations before cross-claim dedup).
COMPARABLE_STATS = (
    "physical_queries",
    "cube_queries",
    "cache_hits",
    "cache_misses",
    "disk_hits",
    "disk_misses",
    "rows_scanned",
)


def make_claim(value):
    document = Document.from_plain_text(
        "T", [f"The data shows {value} interesting things."]
    )
    claims = detect_claims(document)
    assert claims, value
    return claims[0]


def assert_same_outcome(space, oracle, spacey):
    assert np.array_equal(oracle.evaluated, spacey.evaluated)
    assert np.array_equal(oracle.matches, spacey.matches)
    for position in np.flatnonzero(spacey.evaluated).tolist():
        expected = oracle.result_at(space, position)
        actual = spacey.result_at(space, position)
        assert expected == actual and type(expected) is type(actual), (
            position,
            expected,
            actual,
        )


def assert_same_stats(old: EngineStats, new: EngineStats, names=COMPARABLE_STATS):
    for name in names:
        assert getattr(old, name) == getattr(new, name), name


@st.composite
def random_scores(draw, catalog) -> RelevanceScores:
    """Random relevance scores over a fragment catalog.

    Always keeps every function fragment (so ratio and
    conditional-probability candidates stay in play) and at least one
    column; predicates are a random subsample with random scores.
    """
    score = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
    functions = {fragment: draw(score) for fragment in catalog.functions}
    n_columns = draw(st.integers(min_value=1, max_value=len(catalog.columns)))
    columns = {fragment: draw(score) for fragment in catalog.columns[:n_columns]}
    predicate_pool = list(catalog.predicates)
    n_predicates = draw(
        st.integers(min_value=0, max_value=min(len(predicate_pool), 6))
    )
    predicates = {
        fragment: draw(score) for fragment in predicate_pool[:n_predicates]
    }
    return RelevanceScores(functions, columns, predicates)


class TestSpacePathMatchesOracle:
    """Randomized single-claim refinement: both paths, bit for bit."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=15, deadline=None)
    @given(database=small_databases() | nullheavy_databases(), data=st.data())
    def test_refine_identical(self, mode, backend, database, data):
        catalog = extract_fragments(database)
        claim = make_claim(data.draw(st.sampled_from([1, 3, 4.0, 25, 50.0])))
        scores = data.draw(random_scores(catalog))
        space = build_candidates(claim, scores)
        budget = data.draw(st.none() | st.integers(min_value=1, max_value=30))
        config = ScopeConfig(max_evaluations_per_claim=budget)
        preliminary = None
        if budget is not None:
            preliminary = {claim: compute_distribution(space)}

        engine_old = QueryEngine(database, EngineConfig(mode=mode, backend=backend))
        engine_new = QueryEngine(database, EngineConfig(mode=mode, backend=backend))
        oracle = refine_by_eval({claim: space}, preliminary, engine_old, config)
        spacey = refine_by_eval_space(
            {claim: space}, preliminary, engine_new, config
        )
        assert_same_outcome(space, oracle[claim], spacey[claim])
        assert_same_stats(engine_old.stats, engine_new.stats)
        # Single claim, no duplicate candidates: even the logical request
        # count matches between the two paths.
        assert (
            engine_old.stats.queries_requested
            == engine_new.stats.queries_requested
        )

        # Downstream: identical distributions and verdicts.
        d_old = compute_distribution(space, None, oracle[claim])
        d_new = compute_distribution(space, None, spacey[claim])
        assert np.array_equal(d_old.probabilities, d_new.probabilities)
        v_old = make_verdict(claim, d_old)
        v_new = make_verdict(claim, d_new)
        assert v_old.status is v_new.status
        assert v_old.top_query == v_new.top_query
        assert v_old.top_result == v_new.top_result


@pytest.fixture(scope="module")
def nfl_pipeline():
    table = Table(
        "nflsuspensions",
        [
            Column("Name"),
            Column("Team"),
            Column("Games"),
            Column("Category"),
            Column("Year", ColumnType.NUMERIC),
        ],
        NFL_ROWS,
    )
    database = Database("nfl", [table])
    document = Document.from_plain_text(
        "bans",
        [
            "There were 4 suspensions for gambling or abuse in the data.",
            "The data lists 9 suspensions overall.",
            "About 44 percent of suspensions were indefinite.",
        ],
    )
    claims = detect_claims(document)
    catalog = extract_fragments(database)
    index = FragmentIndex(catalog)
    scores = keyword_match(claims, index)
    spaces = {c: build_candidates(c, scores[c]) for c in claims}
    return database, catalog, claims, spaces


class TestMultiClaimDocument:
    """Cross-claim batches share cube work identically on both paths."""

    @pytest.mark.parametrize("mode", MODES)
    def test_physical_work_identical(self, nfl_pipeline, mode):
        database, _, claims, spaces = nfl_pipeline
        engine_old = QueryEngine(database, EngineConfig(mode=mode))
        engine_new = QueryEngine(database, EngineConfig(mode=mode))
        oracle = refine_by_eval(spaces, None, engine_old)
        spacey = refine_by_eval_space(spaces, None, engine_new)
        for claim in claims:
            assert_same_outcome(spaces[claim], oracle[claim], spacey[claim])
        assert_same_stats(engine_old.stats, engine_new.stats)

    @pytest.mark.parametrize("budget", [None, 25])
    def test_query_and_learn_identical(self, nfl_pipeline, budget):
        database, catalog, claims, spaces = nfl_pipeline
        scope = ScopeConfig(max_evaluations_per_claim=budget)
        result_new = query_and_learn(
            spaces,
            catalog,
            QueryEngine(database),
            EmConfig(scope=scope, space_eval=True),
        )
        result_old = query_and_learn(
            spaces,
            catalog,
            QueryEngine(database),
            EmConfig(scope=scope, space_eval=False),
        )
        assert result_new.iterations == result_old.iterations
        assert result_new.priors.functions == result_old.priors.functions
        assert result_new.priors.columns == result_old.priors.columns
        assert result_new.priors.restrictions == result_old.priors.restrictions
        for claim in claims:
            d_new = result_new.distributions[claim]
            d_old = result_old.distributions[claim]
            assert np.array_equal(d_new.probabilities, d_old.probabilities)
            v_new = make_verdict(claim, d_new)
            v_old = make_verdict(claim, d_old)
            assert v_new.status is v_old.status
            assert v_new.top_query == v_old.top_query
            assert v_new.top_result == v_old.top_result
            assert v_new.probability_correct == v_old.probability_correct

    def test_carried_results_skip_reevaluation(self, nfl_pipeline):
        database, _, claims, spaces = nfl_pipeline
        engine = QueryEngine(database)
        carried = {}
        refine_by_eval_space(spaces, None, engine, None, carried)
        requested = engine.stats.queries_requested
        gathered = engine.stats.gathered_candidates
        again = refine_by_eval_space(spaces, None, engine, None, carried)
        # Everything was already answered: nothing reaches the engine.
        assert engine.stats.queries_requested == requested
        assert engine.stats.gathered_candidates == gathered
        for claim in claims:
            assert again[claim].evaluated.all()


class TestPythonFallback:
    """The pure-Python gather kernels must equal the NumPy kernels."""

    def test_fallback_matches_numpy(self, nfl_pipeline, monkeypatch):
        database, _, claims, spaces = nfl_pipeline
        engine_np = QueryEngine(database)
        with_numpy = refine_by_eval_space(spaces, None, engine_np)

        monkeypatch.setattr(gather, "_np", None)
        engine_py = QueryEngine(database)
        without_numpy = refine_by_eval_space(spaces, None, engine_py)
        for claim in claims:
            space = spaces[claim]
            assert np.array_equal(
                with_numpy[claim].evaluated,
                np.asarray(without_numpy[claim].evaluated),
            )
            assert np.array_equal(
                with_numpy[claim].matches,
                np.asarray(without_numpy[claim].matches),
            )
            for position in range(len(space)):
                expected = with_numpy[claim].result_at(space, position)
                actual = without_numpy[claim].result_at(space, position)
                assert expected == actual and type(expected) is type(actual)
        assert_same_stats(engine_np.stats, engine_py.stats)


class TestLazyMaterialization:
    """The default path must never build per-candidate query objects."""

    def test_space_eval_leaves_queries_unmaterialized(self, nfl_pipeline):
        database, catalog, claims, spaces_src = nfl_pipeline
        # Fresh spaces: the module fixture may have been materialized by
        # other tests.
        index = FragmentIndex(catalog)
        scores = keyword_match(claims, index)
        spaces = {c: build_candidates(c, scores[c]) for c in claims}
        engine = QueryEngine(database)
        outcomes = refine_by_eval_space(spaces, None, engine)
        for claim, space in spaces.items():
            assert space._queries is None
            distribution = compute_distribution(space, None, outcomes[claim])
            verdict = make_verdict(claim, distribution)
            assert verdict.top_query is not None
            # Verdict generation materializes only the top candidate.
            assert space._queries is None

    def test_query_at_matches_materialized_list(self, nfl_pipeline):
        _, _, claims, spaces = nfl_pipeline
        space = spaces[claims[0]]
        rebuilt = [space.query_at(i) for i in range(len(space))]
        assert rebuilt == space.queries

    def test_position_of_matches_index(self, nfl_pipeline):
        _, catalog, claims, spaces = nfl_pipeline
        index = FragmentIndex(catalog)
        scores = keyword_match(claims, index)
        space = build_candidates(claims[0], scores[claims[0]])
        probe = [0, 1, len(space) // 2, len(space) - 1]
        queries = [space.query_at(i) for i in probe]
        # Factorized lookup (no materialization).
        for expected, query in zip(probe, queries):
            assert space.position_of(query) == expected
        assert space._queries is None
        # After materialization the dict index takes over; same answers.
        all_queries = space.queries
        for expected, query in zip(probe, queries):
            assert space.position_of(query) == all_queries.index(query)

    def test_position_of_foreign_query_is_none(self, nfl_pipeline):
        database, _, claims, spaces = nfl_pipeline
        from repro.db import parse_query

        space = spaces[claims[0]]
        foreign = parse_query(
            "SELECT Sum(Year) FROM nflsuspensions WHERE Name = 'nobody'",
            database,
        )
        assert space.position_of(foreign) is None


class TestConditionalCoverage:
    """Ratio / conditional candidates and empty groups take the gather path."""

    def test_space_contains_ratio_and_conditional(self, nfl_pipeline):
        _, _, claims, spaces = nfl_pipeline
        from repro.db import AggregateFunction

        space = spaces[claims[0]]
        functions = {
            space.functions[fi].function for fi in np.unique(space.fn_index)
        }
        assert AggregateFunction.PERCENTAGE in functions
        assert AggregateFunction.CONDITIONAL_PROBABILITY in functions
        assert (space.cond_k >= 0).any()

    def test_empty_group_cells_answered(self, nfl_pipeline):
        """Candidates over predicate combos with no rows get count 0 /
        NULL, exactly like the oracle."""
        database, _, claims, spaces = nfl_pipeline
        space = spaces[claims[0]]
        engine = QueryEngine(database)
        results = engine.evaluate_space(space)
        oracle = QueryEngine(database).evaluate(space.queries)
        zero_seen = none_seen = False
        for position, query in enumerate(space.queries):
            value = results.value_at(position)
            assert value == oracle[query] and type(value) is type(oracle[query])
            if value == 0 and query.predicates:
                zero_seen = True
            if value is None:
                none_seen = True
        assert zero_seen and none_seen


class TestSpaceResults:
    def test_value_table_interns_by_type_and_value(self):
        table = ValueTable()
        assert table.intern(3) == table.intern(3)
        assert table.intern(3) != table.intern(3.0)
        assert table.intern(None) != table.intern(0)
        assert table.values[table.intern(3)] == 3

    def test_set_and_read_back(self):
        results = SpaceResults(4)
        assert not results.any_evaluated()
        results.set_value(2, 7.5)
        assert results.any_evaluated()
        assert results.has_value_at(2)
        assert not results.has_value_at(0)
        assert results.value_at(2) == 7.5
        assert results.value_at(0) is None
        mask = np.asarray(results.evaluated_mask())
        assert mask.tolist() == [False, False, True, False]

    def test_from_value_ids_scope_mask(self, nfl_pipeline):
        database, _, claims, spaces = nfl_pipeline
        space = spaces[claims[0]]
        engine = QueryEngine(database)
        results = engine.evaluate_space(space)
        mask = np.zeros(len(space), dtype=bool)
        mask[:10] = True
        outcome = EvaluationOutcome.from_value_ids(space, results, mask)
        assert outcome.evaluated.sum() == 10
        assert not outcome.matches[10:].any()

    def test_engine_stats_fields_cover_gathered(self):
        names = {spec.name for spec in fields(EngineStats)}
        assert "gathered_candidates" in names
