"""Unit tests for candidate-space construction."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")  # the model layer has no pure-Python fallback

from repro.db import AggregateFunction
from repro.fragments import FragmentIndex, extract_fragments
from repro.matching import claim_keywords
from repro.model import CandidateConfig, build_candidates
from repro.text import Document, detect_claims


@pytest.fixture()
def claim_and_scores(nfl_db):
    document = Document.from_plain_text(
        "NFL bans",
        ["Three suspensions were for repeated substance abuse in total."],
    )
    claim = detect_claims(document)[0]
    index = FragmentIndex(extract_fragments(nfl_db))
    scores = index.retrieve(claim_keywords(claim))
    return claim, scores


class TestBuildCandidates:
    def test_space_nonempty(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores)
        assert len(space) > 100

    def test_all_functions_present(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores)
        functions = {f.function for f in space.functions}
        assert len(functions) == 8

    def test_empty_subset_included(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores)
        assert () in space.subsets
        assert any(len(q.predicates) == 0 for q in space.queries)

    def test_max_predicates_respected(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores, CandidateConfig(max_predicates=1))
        assert all(len(q.all_predicates) <= 1 for q in space.queries)

    def test_distinct_columns_per_subset(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores)
        for subset in space.subsets:
            columns = [f.column for f in subset]
            assert len(set(columns)) == len(columns)

    def test_max_subsets_cap(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores, CandidateConfig(max_subsets=10))
        assert len(space.subsets) <= 10
        assert () in space.subsets

    def test_conditional_probability_needs_two_predicates(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores)
        for query in space.queries:
            if (
                query.aggregate.function
                is AggregateFunction.CONDITIONAL_PROBABILITY
            ):
                assert len(query.all_predicates) >= 2
                assert query.condition is not None

    def test_conditional_probability_toggle(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(
            claim,
            scores,
            CandidateConfig(include_conditional_probability=False),
        )
        functions = {q.aggregate.function for q in space.queries}
        assert AggregateFunction.CONDITIONAL_PROBABILITY not in functions

    def test_no_numeric_aggregate_on_star(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores)
        for query in space.queries:
            if query.aggregate.column.is_star:
                assert not query.aggregate.function.needs_numeric_column

    def test_index_arrays_aligned(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores)
        n = len(space)
        assert len(space.fn_index) == n
        assert len(space.col_index) == n
        assert len(space.subset_index) == n
        assert space.fn_index.max() < len(space.functions)
        assert space.col_index.max() < len(space.columns)
        assert space.subset_index.max() < len(space.subsets)

    def test_keyword_logs_are_normalized(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores)
        assert np.exp(space.fn_keyword_log).sum() == pytest.approx(1.0)
        assert np.exp(space.col_keyword_log).sum() == pytest.approx(1.0)

    def test_queries_unique(self, claim_and_scores):
        claim, scores = claim_and_scores
        space = build_candidates(claim, scores)
        assert len(set(space.queries)) == len(space.queries)
