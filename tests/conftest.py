"""Shared fixtures: the paper's running example and a multi-table schema.

Also owns the no-NumPy collection policy: the CI matrix includes a leg
with only pytest+hypothesis installed, where the pure-Python
columnar/gather/CSR kernels run for real. The probabilistic model layer
has no fallback (see ``repro._compat``), so tests that drive the full
pipeline are skipped there — by path below, or via the ``needs_numpy``
marker for individual tests.
"""

from __future__ import annotations

import os

import pytest

from repro.db import Column, ColumnType, Database, ForeignKey, Table

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

#: Test paths (relative to the repo root) exercising the full verification
#: pipeline, which needs the NumPy-based model layer.
_NEEDS_MODEL = (
    "tests/audit/test_shadow.py",
    "tests/core/test_checker.py",
    "tests/core/test_interactive.py",
    "tests/harness/",
    "tests/service/test_aio.py",
    "tests/service/test_resilience.py",
    "tests/service/test_server.py",
    "tests/test_cli.py",
    "tests/test_integration.py",
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "needs_numpy: test drives the NumPy-only model layer "
        "(skipped on the no-NumPy CI leg)",
    )
    config.addinivalue_line(
        "markers",
        "faults: fault-injection / resilience test (CI runs this subset "
        "as its own job via -m faults)",
    )


def pytest_collection_modifyitems(config, items):
    if HAVE_NUMPY:
        return
    skip = pytest.mark.skip(
        reason="full pipeline requires NumPy (model layer has no fallback)"
    )
    for item in items:
        rel = os.path.relpath(str(item.fspath), str(config.rootdir))
        rel = rel.replace(os.sep, "/")
        if item.get_closest_marker("needs_numpy") or any(
            rel == needle or (needle.endswith("/") and rel.startswith(needle))
            for needle in _NEEDS_MODEL
        ):
            item.add_marker(skip)

NFL_ROWS = [
    ("Ray Rice", "BAL", "2", "domestic violence", 2014),
    ("Sean Payton", "NO", "16", "bounty scandal", 2012),
    ("Art Schlichter", "BAL", "indef", "gambling", 1983),
    ("Stanley Wilson", "CIN", "indef", "substance abuse, repeated offense", 1989),
    ("Dexter Manley", "WAS", "indef", "substance abuse, repeated offense", 1991),
    ("Roy Tarpley", "DAL", "indef", "substance abuse, repeated offense", 1995),
    ("Adam Jones", "CIN", "16", "personal conduct", 2007),
    ("Tanard Jackson", "WAS", "16", "substance abuse", 2012),
    ("Josh Gordon", "CLE", "16", "substance abuse", 2014),
]


@pytest.fixture()
def nfl_table() -> Table:
    """The NFL-suspensions table from the paper's Figure 2."""
    return Table(
        "nflsuspensions",
        [
            Column("Name"),
            Column("Team"),
            Column("Games"),
            Column("Category"),
            Column("Year", ColumnType.NUMERIC),
        ],
        NFL_ROWS,
    )


@pytest.fixture()
def nfl_db(nfl_table: Table) -> Database:
    return Database("nfl", [nfl_table])


@pytest.fixture()
def star_db() -> Database:
    """Two tables joined by a foreign key: players -> teams."""
    teams = Table(
        "teams",
        [Column("team_id"), Column("city"), Column("league")],
        [
            ("t1", "boston", "east"),
            ("t2", "dallas", "west"),
            ("t3", "miami", "east"),
        ],
        primary_key="team_id",
    )
    players = Table(
        "players",
        [
            Column("player_id"),
            Column("team"),
            Column("position"),
            Column("salary", ColumnType.NUMERIC),
            Column("goals", ColumnType.NUMERIC),
        ],
        [
            ("p1", "t1", "guard", 120.0, 10),
            ("p2", "t1", "center", 80.0, 4),
            ("p3", "t2", "guard", 95.0, 7),
            ("p4", "t2", "forward", 60.0, 2),
            ("p5", "t3", "guard", 150.0, 12),
            ("p6", "t3", "forward", None, 0),
        ],
        primary_key="player_id",
    )
    return Database(
        "sports",
        [players, teams],
        [ForeignKey("players", "team", "teams", "team_id")],
    )
