"""Shared fixtures: the paper's running example and a multi-table schema."""

from __future__ import annotations

import pytest

from repro.db import Column, ColumnType, Database, ForeignKey, Table

NFL_ROWS = [
    ("Ray Rice", "BAL", "2", "domestic violence", 2014),
    ("Sean Payton", "NO", "16", "bounty scandal", 2012),
    ("Art Schlichter", "BAL", "indef", "gambling", 1983),
    ("Stanley Wilson", "CIN", "indef", "substance abuse, repeated offense", 1989),
    ("Dexter Manley", "WAS", "indef", "substance abuse, repeated offense", 1991),
    ("Roy Tarpley", "DAL", "indef", "substance abuse, repeated offense", 1995),
    ("Adam Jones", "CIN", "16", "personal conduct", 2007),
    ("Tanard Jackson", "WAS", "16", "substance abuse", 2012),
    ("Josh Gordon", "CLE", "16", "substance abuse", 2014),
]


@pytest.fixture()
def nfl_table() -> Table:
    """The NFL-suspensions table from the paper's Figure 2."""
    return Table(
        "nflsuspensions",
        [
            Column("Name"),
            Column("Team"),
            Column("Games"),
            Column("Category"),
            Column("Year", ColumnType.NUMERIC),
        ],
        NFL_ROWS,
    )


@pytest.fixture()
def nfl_db(nfl_table: Table) -> Database:
    return Database("nfl", [nfl_table])


@pytest.fixture()
def star_db() -> Database:
    """Two tables joined by a foreign key: players -> teams."""
    teams = Table(
        "teams",
        [Column("team_id"), Column("city"), Column("league")],
        [
            ("t1", "boston", "east"),
            ("t2", "dallas", "west"),
            ("t3", "miami", "east"),
        ],
        primary_key="team_id",
    )
    players = Table(
        "players",
        [
            Column("player_id"),
            Column("team"),
            Column("position"),
            Column("salary", ColumnType.NUMERIC),
            Column("goals", ColumnType.NUMERIC),
        ],
        [
            ("p1", "t1", "guard", 120.0, 10),
            ("p2", "t1", "center", 80.0, 4),
            ("p3", "t2", "guard", 95.0, 7),
            ("p4", "t2", "forward", 60.0, 2),
            ("p5", "t3", "guard", 150.0, 12),
            ("p6", "t3", "forward", None, 0),
        ],
        primary_key="player_id",
    )
    return Database(
        "sports",
        [players, teams],
        [ForeignKey("players", "team", "teams", "team_id")],
    )
