"""Unit and property tests for the CUBE operator with InOrDefault."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.db import (
    AggregateFunction,
    AggregateSpec,
    ColumnRef,
    CubeQuery,
    STAR,
    execute_cube,
    execute_query,
)
from repro.db.cube import ALL, MAX_CUBE_DIMENSIONS
from repro.errors import QueryError

from tests.db.strategies import claim_queries, small_databases

GAMES = ColumnRef("nflsuspensions", "Games")
CATEGORY = ColumnRef("nflsuspensions", "Category")
COUNT_STAR = AggregateSpec(AggregateFunction.COUNT, STAR)


def nfl_cube(nfl_db, literals_games=("indef",), literals_cat=("gambling",)):
    dims = tuple(sorted([GAMES, CATEGORY]))
    literal_map = {
        GAMES: frozenset(literals_games),
        CATEGORY: frozenset(literals_cat),
    }
    cube = CubeQuery(
        tables=frozenset({"nflsuspensions"}),
        dimensions=dims,
        literals=tuple((d, literal_map[d]) for d in dims),
        aggregates=(COUNT_STAR,),
    )
    return execute_cube(nfl_db, cube)


class TestCubeBasics:
    def test_all_cell_is_total(self, nfl_db):
        result = nfl_cube(nfl_db)
        assert result.value(COUNT_STAR, {}) == 9

    def test_single_dim_cell(self, nfl_db):
        result = nfl_cube(nfl_db)
        assert result.value(COUNT_STAR, {GAMES: "indef"}) == 4

    def test_two_dim_cell(self, nfl_db):
        result = nfl_cube(nfl_db)
        assert (
            result.value(COUNT_STAR, {GAMES: "indef", CATEGORY: "gambling"}) == 1
        )

    def test_uncovered_literal_rejected(self, nfl_db):
        result = nfl_cube(nfl_db)
        with pytest.raises(QueryError):
            result.value(COUNT_STAR, {GAMES: "16"})

    def test_empty_group_count_is_zero(self, nfl_db):
        result = nfl_cube(nfl_db, literals_games=("indef", "99"))
        assert result.value(COUNT_STAR, {GAMES: "99"}) == 0

    def test_rows_scanned(self, nfl_db):
        assert nfl_cube(nfl_db).rows_scanned == 9

    def test_cells_for_spec(self, nfl_db):
        cells = nfl_cube(nfl_db).cells_for(COUNT_STAR)
        assert cells[(ALL, ALL)] == 9

    def test_ratio_aggregate_rejected(self):
        with pytest.raises(QueryError):
            CubeQuery(
                tables=frozenset({"t"}),
                dimensions=(),
                literals=(),
                aggregates=(
                    AggregateSpec(AggregateFunction.PERCENTAGE, STAR),
                ),
            )

    def test_unsorted_dimensions_rejected(self, nfl_db):
        dims = tuple(sorted([GAMES, CATEGORY], reverse=True))
        with pytest.raises(QueryError):
            CubeQuery(
                tables=frozenset({"nflsuspensions"}),
                dimensions=dims,
                literals=tuple((d, frozenset()) for d in dims),
                aggregates=(COUNT_STAR,),
            )

    def test_dimension_limit(self):
        dims = tuple(
            sorted(ColumnRef("t", f"c{i}") for i in range(MAX_CUBE_DIMENSIONS + 1))
        )
        with pytest.raises(QueryError):
            CubeQuery(
                tables=frozenset({"t"}),
                dimensions=dims,
                literals=tuple((d, frozenset()) for d in dims),
                aggregates=(COUNT_STAR,),
            )


class TestCubeAggregates:
    def test_multiple_aggregates_one_pass(self, star_db):
        position = ColumnRef("players", "position")
        salary = ColumnRef("players", "salary")
        specs = (
            AggregateSpec(AggregateFunction.COUNT, ColumnRef("players", "*")),
            AggregateSpec(AggregateFunction.SUM, salary),
            AggregateSpec(AggregateFunction.AVG, salary),
            AggregateSpec(AggregateFunction.MIN, salary),
            AggregateSpec(AggregateFunction.MAX, salary),
            AggregateSpec(AggregateFunction.COUNT_DISTINCT, position),
        )
        cube = CubeQuery(
            tables=frozenset({"players"}),
            dimensions=(position,),
            literals=((position, frozenset({"guard"})),),
            aggregates=specs,
        )
        result = execute_cube(star_db, cube)
        guard = {position: "guard"}
        assert result.value(specs[0], guard) == 3
        assert result.value(specs[1], guard) == pytest.approx(365.0)
        assert result.value(specs[2], guard) == pytest.approx(365.0 / 3)
        assert result.value(specs[3], guard) == 95.0
        assert result.value(specs[4], guard) == 150.0
        assert result.value(specs[5], {}) == 3

    def test_sum_of_empty_group_is_null(self, star_db):
        position = ColumnRef("players", "position")
        salary = ColumnRef("players", "salary")
        spec = AggregateSpec(AggregateFunction.SUM, salary)
        cube = CubeQuery(
            tables=frozenset({"players"}),
            dimensions=(position,),
            literals=((position, frozenset({"goalie"})),),
            aggregates=(spec,),
        )
        result = execute_cube(star_db, cube)
        assert result.value(spec, {position: "goalie"}) is None


class TestNullAndNonNumericCells:
    """NULL / non-numeric handling across every basis aggregate.

    The ``amount`` column mixes NULLs, blank strings, non-numeric strings,
    and coercible strings; SQL semantics require Count to skip only missing
    cells, CountDistinct to count normalized distinct non-missing cells, and
    the numeric aggregates to be NULL when no cell coerces to a number.
    Parametrized over both backends (the columnar backend must replicate the
    row-wise reference exactly).
    """

    ROWS = [
        ("alpha", None),
        ("alpha", "  "),
        ("alpha", "n/a"),
        ("beta", None),
        ("beta", "4"),
        ("beta", 6),
        ("beta", "n/a"),
    ]

    def database(self):
        from repro.db import Column, ColumnType, Database, Table

        table = Table(
            "facts",
            [Column("category"), Column("amount", ColumnType.NUMERIC)],
            self.ROWS,
        )
        return Database("mix", [table])

    def result(self, backend):
        from repro.db import ExecutionBackend
        from repro.db.joins import JoinGraph

        database = self.database()
        category = ColumnRef("facts", "category")
        amount = ColumnRef("facts", "amount")
        specs = tuple(
            AggregateSpec(fn, amount)
            for fn in (
                AggregateFunction.COUNT,
                AggregateFunction.COUNT_DISTINCT,
                AggregateFunction.SUM,
                AggregateFunction.AVG,
                AggregateFunction.MIN,
                AggregateFunction.MAX,
            )
        )
        cube = CubeQuery(
            tables=frozenset({"facts"}),
            dimensions=(category,),
            literals=((category, frozenset({"alpha", "beta"})),),
            aggregates=specs,
        )
        graph = JoinGraph(database, backend=ExecutionBackend[backend])
        return execute_cube(database, cube, graph), specs, category

    @pytest.mark.parametrize("backend", ["ROW", "COLUMNAR"])
    def test_count_skips_only_missing(self, backend):
        result, specs, category = self.result(backend)
        # alpha: NULL and blank are missing, 'n/a' is not.
        assert result.value(specs[0], {category: "alpha"}) == 1
        assert result.value(specs[0], {category: "beta"}) == 3

    @pytest.mark.parametrize("backend", ["ROW", "COLUMNAR"])
    def test_count_distinct_normalizes(self, backend):
        result, specs, category = self.result(backend)
        assert result.value(specs[1], {category: "alpha"}) == 1  # 'n/a'
        assert result.value(specs[1], {category: "beta"}) == 3  # '4', 6, 'n/a'
        assert result.value(specs[1], {}) == 3  # 'n/a' shared across groups

    @pytest.mark.parametrize("backend", ["ROW", "COLUMNAR"])
    def test_numeric_aggregates_null_without_numbers(self, backend):
        result, specs, category = self.result(backend)
        for spec in specs[2:]:
            assert result.value(spec, {category: "alpha"}) is None

    @pytest.mark.parametrize("backend", ["ROW", "COLUMNAR"])
    def test_numeric_aggregates_skip_non_numeric(self, backend):
        result, specs, category = self.result(backend)
        beta = {category: "beta"}
        assert result.value(specs[2], beta) == pytest.approx(10.0)  # Sum
        # Avg divides by the numeric count ('n/a' skipped), matching the
        # naive executor so engine modes agree on messy numeric columns.
        assert result.value(specs[3], beta) == pytest.approx(10.0 / 2)
        assert result.value(specs[4], beta) == pytest.approx(4.0)  # Min
        assert result.value(specs[5], beta) == pytest.approx(6.0)  # Max


@settings(max_examples=60, deadline=None)
@given(database=small_databases(), query=claim_queries())
def test_cube_matches_naive_executor(database, query):
    """Any candidate answered from a cube equals its naive evaluation."""
    if query.aggregate.function.is_ratio:
        # Ratios are served by the engine from counts; tested in test_engine.
        return
    dims = tuple(sorted(query.predicate_columns))
    literal_map = {
        predicate.column: frozenset({predicate.normalized_value})
        for predicate in query.all_predicates
    }
    cube = CubeQuery(
        tables=frozenset({"facts"}),
        dimensions=dims,
        literals=tuple((d, literal_map[d]) for d in dims),
        aggregates=(query.aggregate,),
    )
    result = execute_cube(database, cube)
    assignment = {
        predicate.column: predicate.normalized_value
        for predicate in query.all_predicates
    }
    expected = execute_query(database, query)
    actual = result.value(query.aggregate, assignment)
    if expected is None:
        assert actual is None
    else:
        assert actual == pytest.approx(expected)
