"""Unit tests for the naive executor (reference semantics)."""

from __future__ import annotations

import pytest

from repro.db import execute_query, parse_query


def run(db, sql):
    return execute_query(db, parse_query(sql, db))


class TestCountFamily:
    def test_count_star_no_predicates(self, nfl_db):
        assert run(nfl_db, "SELECT Count(*) FROM nflsuspensions") == 9

    def test_count_star_with_predicate(self, nfl_db):
        assert (
            run(
                nfl_db,
                "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'",
            )
            == 4
        )

    def test_count_two_predicates(self, nfl_db):
        assert (
            run(
                nfl_db,
                "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
                "AND Category = 'substance abuse, repeated offense'",
            )
            == 3
        )

    def test_count_predicate_case_insensitive(self, nfl_db):
        assert (
            run(
                nfl_db,
                "SELECT Count(*) FROM nflsuspensions WHERE Team = 'bal'",
            )
            == 2
        )

    def test_count_column_skips_nulls(self, star_db):
        assert run(star_db, "SELECT Count(salary) FROM players") == 5

    def test_count_distinct(self, nfl_db):
        assert run(nfl_db, "SELECT CountDistinct(Team) FROM nflsuspensions") == 6

    def test_count_empty_selection(self, nfl_db):
        assert (
            run(
                nfl_db,
                "SELECT Count(*) FROM nflsuspensions WHERE Team = 'XXX'",
            )
            == 0
        )


class TestNumericAggregates:
    def test_sum(self, star_db):
        assert run(star_db, "SELECT Sum(goals) FROM players") == 35

    def test_avg(self, star_db):
        assert run(star_db, "SELECT Avg(salary) FROM players") == pytest.approx(101.0)

    def test_min_max(self, star_db):
        assert run(star_db, "SELECT Min(salary) FROM players") == 60.0
        assert run(star_db, "SELECT Max(salary) FROM players") == 150.0

    def test_sum_empty_is_null(self, star_db):
        assert (
            run(
                star_db,
                "SELECT Sum(salary) FROM players WHERE position = 'goalie'",
            )
            is None
        )

    def test_numeric_predicate(self, nfl_db):
        assert (
            run(nfl_db, "SELECT Count(*) FROM nflsuspensions WHERE Year = 2014")
            == 2
        )


class TestRatioFunctions:
    def test_percentage(self, nfl_db):
        result = run(
            nfl_db,
            "SELECT Percentage(*) FROM nflsuspensions WHERE Games = 'indef'",
        )
        assert result == pytest.approx(100.0 * 4 / 9)

    def test_percentage_no_predicates_is_100(self, nfl_db):
        assert run(nfl_db, "SELECT Percentage(*) FROM nflsuspensions") == 100.0

    def test_percentage_of_column_ignores_nulls(self, star_db):
        result = run(
            star_db,
            "SELECT Percentage(salary) FROM players WHERE position = 'guard'",
        )
        assert result == pytest.approx(100.0 * 3 / 5)

    def test_conditional_probability(self, nfl_db):
        result = run(
            nfl_db,
            "SELECT ConditionalProbability(*) FROM nflsuspensions "
            "WHERE Games = 'indef' AND Category = 'gambling'",
        )
        assert result == pytest.approx(25.0)

    def test_conditional_probability_empty_condition_is_null(self, nfl_db):
        result = run(
            nfl_db,
            "SELECT ConditionalProbability(*) FROM nflsuspensions "
            "WHERE Team = 'XXX' AND Category = 'gambling'",
        )
        assert result is None


class TestJoinQueries:
    def test_aggregate_over_join(self, star_db):
        result = run(
            star_db,
            "SELECT Sum(salary) FROM players JOIN teams WHERE league = 'east'",
        )
        assert result == pytest.approx(120.0 + 80.0 + 150.0)

    def test_count_star_over_join(self, star_db):
        result = run(
            star_db,
            "SELECT Count(*) FROM players JOIN teams WHERE city = 'dallas'",
        )
        assert result == 2

    def test_join_inferred_from_columns(self, star_db):
        # No explicit mention of teams in FROM: qualified column pulls it in.
        result = run(
            star_db,
            "SELECT Count(*) FROM players WHERE teams.city = 'boston'",
        )
        assert result == 2
