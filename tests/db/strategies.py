"""Hypothesis strategies for random databases and claim queries."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.db import (
    AggregateFunction,
    AggregateSpec,
    Column,
    ColumnRef,
    ColumnType,
    Database,
    Predicate,
    STAR,
    SimpleAggregateQuery,
    Table,
)

CATEGORIES = ["alpha", "beta", "gamma", "delta"]
FLAGS = ["yes", "no", "maybe"]

NON_RATIO = [
    AggregateFunction.COUNT,
    AggregateFunction.COUNT_DISTINCT,
    AggregateFunction.SUM,
    AggregateFunction.AVG,
    AggregateFunction.MIN,
    AggregateFunction.MAX,
]


@st.composite
def small_databases(draw) -> Database:
    """A single-table database with two string dims and one numeric column."""
    n_rows = draw(st.integers(min_value=0, max_value=30))
    rows = []
    for _ in range(n_rows):
        rows.append(
            (
                draw(st.sampled_from(CATEGORIES) | st.none()),
                draw(st.sampled_from(FLAGS)),
                draw(
                    st.integers(min_value=-50, max_value=50)
                    | st.none()
                ),
            )
        )
    table = Table(
        "facts",
        [
            Column("category"),
            Column("flag"),
            Column("amount", ColumnType.NUMERIC),
        ],
        rows,
    )
    return Database("rand", [table])


@st.composite
def claim_queries(draw) -> SimpleAggregateQuery:
    """A random Simple Aggregate Query against the ``facts`` table."""
    function = draw(st.sampled_from(NON_RATIO + [AggregateFunction.PERCENTAGE]))
    if function in (AggregateFunction.COUNT, AggregateFunction.PERCENTAGE) and draw(
        st.booleans()
    ):
        column = STAR
    else:
        if function.needs_numeric_column:
            column = ColumnRef("facts", "amount")
        else:
            column = draw(
                st.sampled_from(
                    [
                        ColumnRef("facts", "category"),
                        ColumnRef("facts", "flag"),
                        ColumnRef("facts", "amount"),
                    ]
                )
            )
    predicates = []
    if draw(st.booleans()):
        predicates.append(
            Predicate(ColumnRef("facts", "category"), draw(st.sampled_from(CATEGORIES)))
        )
    if draw(st.booleans()):
        predicates.append(
            Predicate(ColumnRef("facts", "flag"), draw(st.sampled_from(FLAGS)))
        )
    return SimpleAggregateQuery(AggregateSpec(function, column), tuple(predicates))


@st.composite
def conditional_queries(draw) -> SimpleAggregateQuery:
    """A random ConditionalProbability query (condition on category)."""
    condition = Predicate(
        ColumnRef("facts", "category"), draw(st.sampled_from(CATEGORIES))
    )
    event = Predicate(ColumnRef("facts", "flag"), draw(st.sampled_from(FLAGS)))
    return SimpleAggregateQuery(
        AggregateSpec(AggregateFunction.CONDITIONAL_PROBABILITY, STAR),
        (event,),
        condition,
    )
