"""Hypothesis strategies for random databases and claim queries."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.db import (
    AggregateFunction,
    AggregateSpec,
    Column,
    ColumnRef,
    ColumnType,
    Database,
    ForeignKey,
    Predicate,
    STAR,
    SimpleAggregateQuery,
    Table,
)

CATEGORIES = ["alpha", "beta", "gamma", "delta"]
FLAGS = ["yes", "no", "maybe"]
LEAGUES = ["east", "west"]
POSITIONS = ["guard", "center", "forward"]

#: Cells that stress normalization and numeric coercion: mixed case,
#: whitespace, separators, currency/percent markers, and non-numeric noise.
MESSY_NUMERICS = ["1,200", "$40", "12%", "(3)", "n/a", "  7  ", ""]

NON_RATIO = [
    AggregateFunction.COUNT,
    AggregateFunction.COUNT_DISTINCT,
    AggregateFunction.SUM,
    AggregateFunction.AVG,
    AggregateFunction.MIN,
    AggregateFunction.MAX,
]


@st.composite
def small_databases(draw) -> Database:
    """A single-table database with two string dims and one numeric column."""
    n_rows = draw(st.integers(min_value=0, max_value=30))
    rows = []
    for _ in range(n_rows):
        rows.append(
            (
                draw(st.sampled_from(CATEGORIES) | st.none()),
                draw(st.sampled_from(FLAGS)),
                draw(
                    st.integers(min_value=-50, max_value=50)
                    | st.none()
                ),
            )
        )
    table = Table(
        "facts",
        [
            Column("category"),
            Column("flag"),
            Column("amount", ColumnType.NUMERIC),
        ],
        rows,
    )
    return Database("rand", [table])


@st.composite
def claim_queries(draw) -> SimpleAggregateQuery:
    """A random Simple Aggregate Query against the ``facts`` table."""
    function = draw(st.sampled_from(NON_RATIO + [AggregateFunction.PERCENTAGE]))
    if function in (AggregateFunction.COUNT, AggregateFunction.PERCENTAGE) and draw(
        st.booleans()
    ):
        column = STAR
    else:
        if function.needs_numeric_column:
            column = ColumnRef("facts", "amount")
        else:
            column = draw(
                st.sampled_from(
                    [
                        ColumnRef("facts", "category"),
                        ColumnRef("facts", "flag"),
                        ColumnRef("facts", "amount"),
                    ]
                )
            )
    predicates = []
    if draw(st.booleans()):
        predicates.append(
            Predicate(ColumnRef("facts", "category"), draw(st.sampled_from(CATEGORIES)))
        )
    if draw(st.booleans()):
        predicates.append(
            Predicate(ColumnRef("facts", "flag"), draw(st.sampled_from(FLAGS)))
        )
    return SimpleAggregateQuery(AggregateSpec(function, column), tuple(predicates))


@st.composite
def nullheavy_databases(draw) -> Database:
    """A single-table database where most cells are NULL or messy strings."""
    n_rows = draw(st.integers(min_value=0, max_value=25))
    cell = st.none() | st.sampled_from(CATEGORIES) | st.just("  ")
    amount = (
        st.none()
        | st.integers(min_value=-9, max_value=9)
        | st.sampled_from(MESSY_NUMERICS)
    )
    rows = [
        (draw(cell), draw(st.sampled_from(FLAGS) | st.none()), draw(amount))
        for _ in range(n_rows)
    ]
    table = Table(
        "facts",
        [
            Column("category"),
            Column("flag"),
            Column("amount", ColumnType.NUMERIC),
        ],
        rows,
    )
    return Database("nullheavy", [table])


@st.composite
def joined_databases(draw) -> Database:
    """A two-table players -> teams database with NULL join keys and
    dangling foreign keys (rows both sides drop during the equi-join)."""
    n_teams = draw(st.integers(min_value=1, max_value=4))
    team_ids = [f"t{i}" for i in range(n_teams)]
    teams = Table(
        "teams",
        [Column("team_id"), Column("league")],
        [
            (team_id, draw(st.sampled_from(LEAGUES) | st.none()))
            for team_id in team_ids
        ],
        primary_key="team_id",
    )
    n_players = draw(st.integers(min_value=0, max_value=25))
    key = st.sampled_from(team_ids + ["t-dangling"]) | st.none()
    salary = st.none() | st.integers(min_value=0, max_value=500)
    players = Table(
        "players",
        [
            Column("player_id"),
            Column("team"),
            Column("position"),
            Column("salary", ColumnType.NUMERIC),
        ],
        [
            (
                f"p{i}",
                draw(key),
                draw(st.sampled_from(POSITIONS)),
                draw(salary),
            )
            for i in range(n_players)
        ],
        primary_key="player_id",
    )
    return Database(
        "sports",
        [players, teams],
        [ForeignKey("players", "team", "teams", "team_id")],
    )


@st.composite
def joined_queries(draw) -> SimpleAggregateQuery:
    """A query whose predicates span the players -> teams join."""
    function = draw(st.sampled_from(NON_RATIO + [AggregateFunction.PERCENTAGE]))
    if function.needs_numeric_column:
        column = ColumnRef("players", "salary")
    elif draw(st.booleans()) and function in (
        AggregateFunction.COUNT,
        AggregateFunction.PERCENTAGE,
    ):
        column = STAR
    else:
        column = draw(
            st.sampled_from(
                [
                    ColumnRef("players", "position"),
                    ColumnRef("players", "salary"),
                    ColumnRef("teams", "league"),
                ]
            )
        )
    predicates = []
    if draw(st.booleans()):
        predicates.append(
            Predicate(
                ColumnRef("teams", "league"),
                draw(st.sampled_from(LEAGUES + ["nowhere"])),
            )
        )
    if draw(st.booleans()):
        predicates.append(
            Predicate(
                ColumnRef("players", "position"), draw(st.sampled_from(POSITIONS))
            )
        )
    if not predicates and column.is_star:
        # A table-less star is ambiguous on a two-table database.
        column = ColumnRef("players", "*")
    return SimpleAggregateQuery(AggregateSpec(function, column), tuple(predicates))


@st.composite
def conditional_queries(draw) -> SimpleAggregateQuery:
    """A random ConditionalProbability query (condition on category)."""
    condition = Predicate(
        ColumnRef("facts", "category"), draw(st.sampled_from(CATEGORIES))
    )
    event = Predicate(ColumnRef("facts", "flag"), draw(st.sampled_from(FLAGS)))
    return SimpleAggregateQuery(
        AggregateSpec(AggregateFunction.CONDITIONAL_PROBABILITY, STAR),
        (event,),
        condition,
    )
