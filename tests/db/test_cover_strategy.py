"""Unit and property tests for the PAPER cube-cover strategy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    CubeCoverStrategy,
    EngineConfig,
    ExecutionMode,
    QueryEngine,
    parse_query,
)

from tests.db.strategies import claim_queries, conditional_queries, small_databases


def queries_for(nfl_db):
    sqls = [
        "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'",
        "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
        "AND Category = 'gambling'",
        "SELECT Count(*) FROM nflsuspensions WHERE Team = 'BAL' AND Year = 2014",
        "SELECT Percentage(*) FROM nflsuspensions WHERE Games = '16'",
        "SELECT Sum(Year) FROM nflsuspensions",
    ]
    return [parse_query(sql, nfl_db) for sql in sqls]


class TestPaperCover:
    def test_matches_naive(self, nfl_db):
        queries = queries_for(nfl_db)
        naive = QueryEngine(nfl_db, EngineConfig(mode=ExecutionMode.NAIVE)).evaluate(queries)
        paper = QueryEngine(nfl_db, EngineConfig(cover_strategy=CubeCoverStrategy.PAPER
        )).evaluate(queries)
        for query in queries:
            assert paper[query] == pytest.approx(naive[query])

    def test_overlapping_cubes_cover_all_subsets(self, nfl_db):
        """nG-sized dim sets can serve any candidate with <= m predicates."""
        engine = QueryEngine(nfl_db, EngineConfig(cover_strategy=CubeCoverStrategy.PAPER))
        queries = queries_for(nfl_db)
        engine.evaluate(queries)
        # The scope spans 4 predicate columns -> nG = 3-sized dim sets.
        assert engine.stats.cube_queries >= 1

    def test_cache_reuse_across_calls(self, nfl_db):
        engine = QueryEngine(nfl_db, EngineConfig(cover_strategy=CubeCoverStrategy.PAPER))
        queries = queries_for(nfl_db)
        engine.evaluate(queries)
        physical = engine.stats.physical_queries
        engine.evaluate(queries)
        assert engine.stats.physical_queries == physical

    def test_exact_is_default(self, nfl_db):
        assert QueryEngine(nfl_db).cover_strategy is CubeCoverStrategy.EXACT


@settings(max_examples=30, deadline=None)
@given(
    database=small_databases(),
    queries=st.lists(
        claim_queries() | conditional_queries(), min_size=1, max_size=10
    ),
)
def test_paper_cover_equivalent_to_naive(database, queries):
    """Property: the PAPER cover answers every query like the naive engine."""
    naive = QueryEngine(database, EngineConfig(mode=ExecutionMode.NAIVE)).evaluate(queries)
    paper = QueryEngine(database, EngineConfig(cover_strategy=CubeCoverStrategy.PAPER
    )).evaluate(queries)
    for query in set(queries):
        expected = naive[query]
        actual = paper[query]
        if expected is None:
            assert actual is None
        else:
            assert actual == pytest.approx(expected)
