"""Unit and property tests for the merging/caching query engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    ExecutionMode,
    QueryEngine,
    parse_query,
)

from tests.db.strategies import (
    claim_queries,
    conditional_queries,
    small_databases,
)


def queries_for(nfl_db):
    sqls = [
        "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'",
        "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
        "AND Category = 'gambling'",
        "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
        "AND Category = 'substance abuse, repeated offense'",
        "SELECT Percentage(*) FROM nflsuspensions WHERE Games = 'indef'",
        "SELECT Sum(Year) FROM nflsuspensions WHERE Team = 'BAL'",
        "SELECT Count(*) FROM nflsuspensions",
        "SELECT ConditionalProbability(*) FROM nflsuspensions "
        "WHERE Games = 'indef' AND Category = 'gambling'",
    ]
    return [parse_query(sql, nfl_db) for sql in sqls]


class TestModesAgree:
    def test_merged_equals_naive(self, nfl_db):
        queries = queries_for(nfl_db)
        naive = QueryEngine(nfl_db, ExecutionMode.NAIVE).evaluate(queries)
        merged = QueryEngine(nfl_db, ExecutionMode.MERGED).evaluate(queries)
        cached = QueryEngine(nfl_db, ExecutionMode.MERGED_CACHED).evaluate(queries)
        for query in queries:
            assert merged[query] == pytest.approx(naive[query])
            assert cached[query] == pytest.approx(naive[query])

    def test_merged_equals_naive_on_joins(self, star_db):
        sqls = [
            "SELECT Sum(salary) FROM players JOIN teams WHERE league = 'east'",
            "SELECT Count(*) FROM players JOIN teams WHERE city = 'dallas'",
            "SELECT Count(*) FROM players WHERE position = 'guard'",
            "SELECT Avg(goals) FROM players",
        ]
        queries = [parse_query(sql, star_db) for sql in sqls]
        naive = QueryEngine(star_db, ExecutionMode.NAIVE).evaluate(queries)
        merged = QueryEngine(star_db, ExecutionMode.MERGED).evaluate(queries)
        for query in queries:
            assert merged[query] == pytest.approx(naive[query])


class TestSharing:
    def test_queries_merged_into_few_cubes(self, nfl_db):
        engine = QueryEngine(nfl_db)
        engine.evaluate(queries_for(nfl_db))
        # 7 logical queries collapse into a handful of physical cubes.
        assert engine.stats.queries_requested == 7
        assert engine.stats.physical_queries < 7

    def test_cache_hits_across_calls(self, nfl_db):
        engine = QueryEngine(nfl_db, ExecutionMode.MERGED_CACHED)
        queries = queries_for(nfl_db)
        engine.evaluate(queries)
        first_physical = engine.stats.physical_queries
        engine.evaluate(queries)
        assert engine.stats.physical_queries == first_physical
        assert engine.stats.cache_hits > 0

    def test_merged_mode_does_not_cache_across_calls(self, nfl_db):
        engine = QueryEngine(nfl_db, ExecutionMode.MERGED)
        queries = queries_for(nfl_db)
        engine.evaluate(queries)
        first_physical = engine.stats.physical_queries
        engine.evaluate(queries)
        assert engine.stats.physical_queries == 2 * first_physical

    def test_cache_extends_for_new_literals(self, nfl_db):
        engine = QueryEngine(nfl_db, ExecutionMode.MERGED_CACHED)
        q1 = parse_query(
            "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'", nfl_db
        )
        q2 = parse_query(
            "SELECT Count(*) FROM nflsuspensions WHERE Games = '16'", nfl_db
        )
        assert engine.evaluate([q1])[q1] == 4
        assert engine.evaluate([q2])[q2] == 4  # four 16-game suspensions
        # Third call over both literals is fully served from cache.
        physical = engine.stats.physical_queries
        result = engine.evaluate([q1, q2])
        assert engine.stats.physical_queries == physical
        assert result[q1] == 4 and result[q2] == 4

    def test_merged_mode_accumulates_cache_stats(self, nfl_db):
        """Regression: MERGED mode creates a fresh ResultCache per evaluate()
        call; engine stats must accumulate hit/miss deltas instead of being
        overwritten with the current cache's counters each batch."""
        engine = QueryEngine(nfl_db, ExecutionMode.MERGED)
        queries = queries_for(nfl_db)
        engine.evaluate(queries)
        first_misses = engine.stats.cache_misses
        assert first_misses > 0
        engine.evaluate(queries)
        # Every batch starts cold, so misses double instead of resetting.
        assert engine.stats.cache_misses == 2 * first_misses

    def test_cached_mode_accumulates_cache_stats(self, nfl_db):
        engine = QueryEngine(nfl_db, ExecutionMode.MERGED_CACHED)
        queries = queries_for(nfl_db)
        engine.evaluate(queries)
        hits, misses = engine.stats.cache_hits, engine.stats.cache_misses
        engine.evaluate(queries)
        # Second batch is fully served from cache: hits grow, misses do not.
        assert engine.stats.cache_hits > hits
        assert engine.stats.cache_misses == misses
        assert (engine.stats.cache_hits, engine.stats.cache_misses) == (
            engine.cache.stats.hits,
            engine.cache.stats.misses,
        )

    def test_naive_counts_each_query(self, nfl_db):
        engine = QueryEngine(nfl_db, ExecutionMode.NAIVE)
        engine.evaluate(queries_for(nfl_db))
        assert engine.stats.physical_queries == 7

    def test_duplicates_deduplicated(self, nfl_db):
        engine = QueryEngine(nfl_db)
        query = queries_for(nfl_db)[0]
        results = engine.evaluate([query, query, query])
        assert len(results) == 1

    def test_evaluate_one(self, nfl_db):
        engine = QueryEngine(nfl_db)
        query = queries_for(nfl_db)[0]
        assert engine.evaluate_one(query) == 4


@settings(max_examples=40, deadline=None)
@given(
    database=small_databases(),
    queries=st.lists(claim_queries() | conditional_queries(), min_size=1, max_size=12),
)
def test_engine_modes_equivalent(database, queries):
    """Property: merged/cached engines agree with the naive engine."""
    naive = QueryEngine(database, ExecutionMode.NAIVE).evaluate(queries)
    cached_engine = QueryEngine(database, ExecutionMode.MERGED_CACHED)
    # Evaluate twice so cached results are exercised too.
    cached_engine.evaluate(queries)
    cached = cached_engine.evaluate(queries)
    for query in set(queries):
        expected = naive[query]
        actual = cached[query]
        if expected is None:
            assert actual is None
        else:
            assert actual == pytest.approx(expected)
