"""Randomized cross-checks of the columnar backend against the row-wise oracle.

The row-wise executor, join, and cube implementations are the reference
semantics; every test here asserts that the dictionary-encoded columnar
backend produces identical results — cell-for-cell for cubes, value-for-value
for SimpleAggregateQueries — on randomized databases including NULL-heavy
columns, messy numeric strings, dangling join keys, and empty groups. One
test monkeypatches the NumPy import guard to exercise the pure-Python
fallback kernels.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.db.columnar as columnar
from repro.db import (
    AggregateFunction,
    AggregateSpec,
    ColumnRef,
    CubeQuery,
    EngineConfig,
    ExecutionBackend,
    ExecutionMode,
    QueryEngine,
    STAR,
    execute_cube,
    execute_query,
    parse_query,
)
from repro.db.columnar import ColumnarRelation
from repro.db.joins import JoinGraph

from tests.db.strategies import (
    CATEGORIES,
    FLAGS,
    claim_queries,
    conditional_queries,
    joined_databases,
    joined_queries,
    nullheavy_databases,
    small_databases,
)

CATEGORY = ColumnRef("facts", "category")
FLAG = ColumnRef("facts", "flag")
AMOUNT = ColumnRef("facts", "amount")

#: All basis aggregates over the facts table (star + every real column).
FACTS_SPECS = (
    AggregateSpec(AggregateFunction.COUNT, STAR),
    AggregateSpec(AggregateFunction.COUNT, AMOUNT),
    AggregateSpec(AggregateFunction.COUNT_DISTINCT, CATEGORY),
    AggregateSpec(AggregateFunction.COUNT_DISTINCT, AMOUNT),
    AggregateSpec(AggregateFunction.SUM, AMOUNT),
    AggregateSpec(AggregateFunction.AVG, AMOUNT),
    AggregateSpec(AggregateFunction.MIN, AMOUNT),
    AggregateSpec(AggregateFunction.MAX, AMOUNT),
)


def assert_value_equal(expected, actual, context=""):
    if expected is None:
        assert actual is None, f"{context}: row-wise None, columnar {actual!r}"
    else:
        assert actual is not None, f"{context}: row-wise {expected!r}, columnar None"
        assert actual == pytest.approx(expected), context


def assert_cube_results_equal(row_result, col_result):
    """Cell-for-cell equality: same keys, same specs, same values."""
    assert set(col_result.cells) == set(row_result.cells)
    for key, row_cell in row_result.cells.items():
        col_cell = col_result.cells[key]
        assert set(col_cell) == set(row_cell)
        for spec, expected in row_cell.items():
            assert_value_equal(expected, col_cell[spec], f"{key} {spec}")


def both_graphs(database):
    return (
        JoinGraph(database, backend=ExecutionBackend.ROW),
        JoinGraph(database, backend=ExecutionBackend.COLUMNAR),
    )


@st.composite
def facts_cubes(draw) -> CubeQuery:
    """A random cube over the facts table.

    Literal sets may include values that never occur (empty groups) and the
    dimension list may be empty (pure ALL-cell cube).
    """
    dims = draw(
        st.sets(st.sampled_from([CATEGORY, FLAG]), min_size=0, max_size=2)
    )
    ordered = tuple(sorted(dims))
    literal_pool = {
        CATEGORY: CATEGORIES + ["absent-literal"],
        FLAG: FLAGS + ["absent-literal"],
    }
    literals = tuple(
        (
            dim,
            frozenset(
                draw(st.sets(st.sampled_from(literal_pool[dim]), min_size=1, max_size=3))
            ),
        )
        for dim in ordered
    )
    n_specs = draw(st.integers(min_value=1, max_value=len(FACTS_SPECS)))
    return CubeQuery(
        tables=frozenset({"facts"}),
        dimensions=ordered,
        literals=literals,
        aggregates=FACTS_SPECS[:n_specs],
    )


@settings(max_examples=60, deadline=None)
@given(database=small_databases() | nullheavy_databases(), cube=facts_cubes())
def test_cube_matches_rowwise_oracle(database, cube):
    """Property: columnar cube cells equal row-wise cube cells exactly."""
    row_graph, col_graph = both_graphs(database)
    row_result = execute_cube(database, cube, row_graph)
    col_result = execute_cube(database, cube, col_graph)
    assert isinstance(col_graph.relation({"facts"}), ColumnarRelation)
    assert_cube_results_equal(row_result, col_result)


@settings(max_examples=60, deadline=None)
@given(
    database=small_databases() | nullheavy_databases(),
    query=claim_queries() | conditional_queries(),
)
def test_simple_queries_match_rowwise_oracle(database, query):
    """Property: execute_query agrees between backends on random inputs."""
    row_graph, col_graph = both_graphs(database)
    expected = execute_query(database, query, row_graph)
    actual = execute_query(database, query, col_graph)
    assert_value_equal(expected, actual, str(query))


@settings(max_examples=40, deadline=None)
@given(database=joined_databases(), queries=st.lists(joined_queries(), min_size=1, max_size=8))
def test_joined_queries_match_rowwise_oracle(database, queries):
    """Property: hash join on key codes reproduces the row-wise equi-join
    (NULL keys and dangling foreign keys drop identically) for every mode."""
    for mode in (ExecutionMode.NAIVE, ExecutionMode.MERGED_CACHED):
        row = QueryEngine(database, EngineConfig(mode=mode, backend=ExecutionBackend.ROW)).evaluate(queries)
        col = QueryEngine(database, EngineConfig(mode=mode, backend=ExecutionBackend.COLUMNAR)).evaluate(
            queries
        )
        for query in set(queries):
            assert_value_equal(row[query], col[query], f"{mode} {query}")


@settings(max_examples=40, deadline=None)
@given(
    database=small_databases() | nullheavy_databases(),
    queries=st.lists(
        claim_queries() | conditional_queries(), min_size=1, max_size=10
    ),
)
def test_engine_modes_match_across_backends(database, queries):
    """Property: the full engine ladder agrees between backends, including
    repeat evaluation through the result cache."""
    naive_row = QueryEngine(database, EngineConfig(mode=ExecutionMode.NAIVE, backend=ExecutionBackend.ROW
    )).evaluate(queries)
    engine = QueryEngine(database, EngineConfig(mode=ExecutionMode.MERGED_CACHED, backend=ExecutionBackend.COLUMNAR
    ))
    engine.evaluate(queries)  # populate the cache
    cached = engine.evaluate(queries)  # answer from cached columnar cells
    for query in set(queries):
        assert_value_equal(naive_row[query], cached[query], str(query))


class TestJoinStructure:
    def test_columnar_join_matches_rowwise_rows(self, star_db):
        """The joined relations have identical row multisets (checked via
        per-column value counts and the relation length)."""
        row_graph, col_graph = both_graphs(star_db)
        row_rel = row_graph.relation({"players", "teams"})
        col_rel = col_graph.relation({"players", "teams"})
        assert isinstance(col_rel, ColumnarRelation)
        assert len(col_rel) == len(row_rel)
        assert col_rel.columns == row_rel.columns
        for column in row_rel.columns:
            vector = col_rel.vector(column)
            decoded = sorted(
                vector.dictionary.values[code] for code in vector.codes
            )
            from repro.db.values import normalize_string

            expected = sorted(
                normalize_string(value) for value in row_rel.column_values(column)
            )
            assert decoded == expected

    def test_empty_relation_cube(self):
        from repro.db import Column, ColumnType, Database, Table

        database = Database(
            "empty", [Table("facts", [Column("category"), Column("amount", ColumnType.NUMERIC)])]
        )
        cube = CubeQuery(
            tables=frozenset({"facts"}),
            dimensions=(ColumnRef("facts", "category"),),
            literals=((ColumnRef("facts", "category"), frozenset({"alpha"})),),
            aggregates=(AggregateSpec(AggregateFunction.COUNT, STAR),),
        )
        row_graph, col_graph = both_graphs(database)
        assert_cube_results_equal(
            execute_cube(database, cube, row_graph),
            execute_cube(database, cube, col_graph),
        )


class TestPurePythonFallback:
    """The columnar backend without NumPy (monkeypatched import guard)."""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(columnar, "_np", None)
        assert not columnar.numpy_available()

    def test_fallback_relations_are_not_vectorized(self, no_numpy, nfl_db):
        graph = JoinGraph(nfl_db, backend=ExecutionBackend.COLUMNAR)
        relation = graph.relation({"nflsuspensions"})
        assert isinstance(relation, ColumnarRelation)
        assert isinstance(relation.vectors[0].codes, list)

    def test_fallback_engine_matches_rowwise(self, no_numpy, nfl_db):
        sqls = [
            "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'",
            "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
            "AND Category = 'gambling'",
            "SELECT Percentage(*) FROM nflsuspensions WHERE Games = 'indef'",
            "SELECT Sum(Year) FROM nflsuspensions WHERE Team = 'BAL'",
            "SELECT Avg(Year) FROM nflsuspensions",
            "SELECT Min(Year) FROM nflsuspensions WHERE Games = '16'",
            "SELECT CountDistinct(Team) FROM nflsuspensions",
            "SELECT Count(*) FROM nflsuspensions WHERE Year = 2012",
            "SELECT ConditionalProbability(*) FROM nflsuspensions "
            "WHERE Games = 'indef' AND Category = 'gambling'",
        ]
        queries = [parse_query(sql, nfl_db) for sql in sqls]
        for mode in ExecutionMode:
            row = QueryEngine(nfl_db, EngineConfig(mode=mode, backend=ExecutionBackend.ROW)).evaluate(
                queries
            )
            col = QueryEngine(nfl_db, EngineConfig(mode=mode, backend=ExecutionBackend.COLUMNAR
            )).evaluate(queries)
            for query in queries:
                assert_value_equal(row[query], col[query], f"{mode} {query}")

    def test_fallback_join_matches_rowwise(self, no_numpy, star_db):
        sqls = [
            "SELECT Sum(salary) FROM players JOIN teams WHERE league = 'east'",
            "SELECT Count(*) FROM players JOIN teams WHERE city = 'dallas'",
            "SELECT Avg(goals) FROM players",
        ]
        queries = [parse_query(sql, star_db) for sql in sqls]
        row = QueryEngine(star_db, EngineConfig(mode=ExecutionMode.MERGED_CACHED, backend=ExecutionBackend.ROW
        )).evaluate(queries)
        col = QueryEngine(star_db, EngineConfig(mode=ExecutionMode.MERGED_CACHED, backend=ExecutionBackend.COLUMNAR
        )).evaluate(queries)
        for query in queries:
            assert_value_equal(row[query], col[query], str(query))

    def test_fallback_cube_matches_rowwise(self, no_numpy):
        from repro.db import Column, ColumnType, Database, Table

        database = Database(
            "mix",
            [
                Table(
                    "facts",
                    [Column("category"), Column("amount", ColumnType.NUMERIC)],
                    [
                        ("alpha", 3),
                        ("ALPHA", None),
                        (None, "1,200"),
                        ("beta", "n/a"),
                        ("  ", 5),
                    ],
                )
            ],
        )
        cube = CubeQuery(
            tables=frozenset({"facts"}),
            dimensions=(ColumnRef("facts", "category"),),
            literals=((ColumnRef("facts", "category"), frozenset({"alpha", "missing"})),),
            aggregates=(
                AggregateSpec(AggregateFunction.COUNT, STAR),
                AggregateSpec(AggregateFunction.SUM, ColumnRef("facts", "amount")),
                AggregateSpec(
                    AggregateFunction.COUNT_DISTINCT, ColumnRef("facts", "amount")
                ),
            ),
        )
        row_graph, col_graph = both_graphs(database)
        assert_cube_results_equal(
            execute_cube(database, cube, row_graph),
            execute_cube(database, cube, col_graph),
        )
