"""Unit tests for the cube-cell result cache."""

from __future__ import annotations

from repro.db import AggregateFunction, AggregateSpec, ColumnRef, STAR
from repro.db.cache import ResultCache
from repro.db.cube import ALL

TABLES = frozenset({"t"})
SPEC = AggregateSpec(AggregateFunction.COUNT, STAR)
DIM = ColumnRef("t", "games")
DIMS = (DIM,)


class TestResultCache:
    def test_miss_on_empty(self):
        cache = ResultCache()
        assert cache.get(TABLES, SPEC, DIMS, {DIM: frozenset({"indef"})}) is None
        assert cache.stats.misses == 1

    def test_hit_after_put(self):
        cache = ResultCache()
        literals = {DIM: frozenset({"indef"})}
        cache.put(TABLES, SPEC, DIMS, literals, {("indef",): 4, (ALL,): 9})
        entry = cache.get(TABLES, SPEC, DIMS, literals)
        assert entry is not None
        assert entry.cells[("indef",)] == 4
        assert cache.stats.hits == 1

    def test_miss_on_uncovered_literal(self):
        cache = ResultCache()
        cache.put(
            TABLES, SPEC, DIMS, {DIM: frozenset({"indef"})}, {("indef",): 4}
        )
        assert cache.get(TABLES, SPEC, DIMS, {DIM: frozenset({"16"})}) is None

    def test_merge_extends_coverage(self):
        cache = ResultCache()
        cache.put(
            TABLES, SPEC, DIMS, {DIM: frozenset({"indef"})}, {("indef",): 4}
        )
        cache.put(TABLES, SPEC, DIMS, {DIM: frozenset({"16"})}, {("16",): 3})
        both = {DIM: frozenset({"indef", "16"})}
        entry = cache.get(TABLES, SPEC, DIMS, both)
        assert entry is not None
        assert entry.cells[("indef",)] == 4
        assert entry.cells[("16",)] == 3

    def test_distinct_specs_are_separate_entries(self):
        cache = ResultCache()
        other_spec = AggregateSpec(
            AggregateFunction.SUM, ColumnRef("t", "year")
        )
        literals = {DIM: frozenset({"indef"})}
        cache.put(TABLES, SPEC, DIMS, literals, {("indef",): 4})
        assert cache.get(TABLES, other_spec, DIMS, literals) is None
        assert len(cache) == 1

    def test_clear(self):
        cache = ResultCache()
        cache.put(TABLES, SPEC, DIMS, {DIM: frozenset({"x"})}, {})
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0

    def test_subset_of_cached_literals_hits(self):
        cache = ResultCache()
        cache.put(
            TABLES,
            SPEC,
            DIMS,
            {DIM: frozenset({"a", "b", "c"})},
            {("a",): 1, ("b",): 2, ("c",): 3},
        )
        entry = cache.get(TABLES, SPEC, DIMS, {DIM: frozenset({"b"})})
        assert entry is not None
