"""Cross-cutting property tests for the db substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    AggregateFunction,
    AggregateSpec,
    CubeQuery,
    STAR,
    execute_cube,
    execute_query,
    parse_query,
    render_sql,
)
from repro.db.cube import ALL
from repro.db.refs import ColumnRef

from tests.db.strategies import claim_queries, small_databases

COUNT_STAR = AggregateSpec(AggregateFunction.COUNT, STAR)
CATEGORY = ColumnRef("facts", "category")
FLAG = ColumnRef("facts", "flag")


@settings(max_examples=60, deadline=None)
@given(database=small_databases(), query=claim_queries())
def test_sql_roundtrip(database, query):
    """Property: render -> parse is the identity on claim queries.

    Queries referencing no table at all (a bare table-less ``Count(*)``)
    render with a placeholder FROM clause and are excluded: their table
    binding only exists relative to a database.
    """
    if not query.referenced_tables():
        return
    sql = render_sql(query)
    assert parse_query(sql, database) == query


@settings(max_examples=40, deadline=None)
@given(database=small_databases())
def test_cube_children_sum_to_parent(database):
    """Property: for counts, the ALL cell equals the sum of all cells of
    the fully-specified dimension (CUBE rollup consistency)."""
    literals = {
        CATEGORY: frozenset({"alpha", "beta", "gamma", "delta"}),
    }
    cube = CubeQuery(
        tables=frozenset({"facts"}),
        dimensions=(CATEGORY,),
        literals=((CATEGORY, literals[CATEGORY]),),
        aggregates=(COUNT_STAR,),
    )
    result = execute_cube(database, cube)
    total = result.value(COUNT_STAR, {})
    by_value = sum(
        cells.get(COUNT_STAR, 0)
        for key, cells in result.cells.items()
        if key[0] is not ALL
    )
    assert total == by_value


@settings(max_examples=40, deadline=None)
@given(database=small_databases(), query=claim_queries())
def test_adding_a_predicate_never_increases_count(database, query):
    """Property: counts are antitone in the predicate set."""
    if query.aggregate.function is not AggregateFunction.COUNT:
        return
    base = query.with_predicates(())
    full = execute_query(database, query)
    unrestricted = execute_query(database, base)
    assert full <= unrestricted


@settings(max_examples=40, deadline=None)
@given(database=small_databases(), query=claim_queries())
def test_percentage_bounded(database, query):
    """Property: Percentage results lie in [0, 100] (or NULL)."""
    if query.aggregate.function is not AggregateFunction.PERCENTAGE:
        return
    result = execute_query(database, query)
    if result is not None:
        assert 0.0 <= result <= 100.0 + 1e-9
