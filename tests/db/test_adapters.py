"""The storage-adapter API: registry, capabilities, EngineConfig, the
deprecation shims over the old flat constructor kwargs, and predictive
cardinality estimates feeding budget admission."""

from __future__ import annotations

import warnings
from dataclasses import replace

import pytest

from repro.budget import ResourceBudget, estimate_cube_cells
from repro.core.config import AggCheckerConfig
from repro.db import (
    Column,
    ColumnType,
    Database,
    EngineConfig,
    ExecutionMode,
    ForeignKey,
    QueryEngine,
    Table,
    adapter_names,
    canonical_backend_name,
    create_adapter,
    parse_query,
)
from repro.db.adapters import (
    ColumnarAdapter,
    DuckdbAdapter,
    RowAdapter,
    SqliteAdapter,
)
from repro.db.adapters.base import adapter_class
from repro.db.columnar import ExecutionBackend
from repro.errors import BudgetExceeded, MissingDependencyError, QueryError


def small_db() -> Database:
    table = Table(
        "events",
        [Column("kind"), Column("score", ColumnType.NUMERIC)],
        [("a", 1), ("a", 2), ("b", 3), (None, 4)],
    )
    return Database("d", [table])


def fanout_db(n_players_per_team=4, n_teams=3) -> Database:
    teams = Table(
        "teams",
        [Column("team_id"), Column("league")],
        [(f"t{i}", "east") for i in range(n_teams)],
        primary_key="team_id",
    )
    players = Table(
        "players",
        [Column("player_id"), Column("team"), Column("salary", ColumnType.NUMERIC)],
        [
            (f"p{t}-{i}", f"t{t}", 100 + i)
            for t in range(n_teams)
            for i in range(n_players_per_team)
        ],
        primary_key="player_id",
    )
    return Database(
        "sports",
        [players, teams],
        [ForeignKey("players", "team", "teams", "team_id")],
    )


class TestRegistry:
    def test_builtins_registered_in_fixed_order(self):
        names = adapter_names()
        assert names[:4] == ["columnar", "row", "sqlite", "duckdb"]

    def test_canonical_name_accepts_enum_and_string(self):
        assert canonical_backend_name(ExecutionBackend.ROW) == "row"
        assert canonical_backend_name("  SQLite ") == "sqlite"
        assert canonical_backend_name("columnar") == "columnar"

    def test_unknown_backend_is_a_query_error(self):
        with pytest.raises(QueryError, match="unknown storage backend"):
            canonical_backend_name("parquet")

    def test_adapter_classes(self):
        assert adapter_class("columnar") is ColumnarAdapter
        assert adapter_class("row") is RowAdapter
        assert adapter_class("sqlite") is SqliteAdapter
        assert adapter_class("duckdb") is DuckdbAdapter

    def test_create_adapter_instantiates(self):
        adapter = create_adapter("sqlite", small_db())
        try:
            assert adapter.name == "sqlite"
        finally:
            adapter.close()

    def test_missing_optional_dependency_is_structured(self):
        if DuckdbAdapter.available():
            pytest.skip("duckdb installed; absence path not reachable")
        with pytest.raises(MissingDependencyError, match="duckdb"):
            create_adapter("duckdb", small_db())


class TestCapabilities:
    def test_in_memory_adapters_do_not_push_down(self):
        for cls in (ColumnarAdapter, RowAdapter):
            assert not cls.capabilities.pushdown
            assert not cls.capabilities.pagination
            assert cls.capabilities.estimates_cardinality

    def test_sql_adapters_push_down_and_paginate(self):
        for cls in (SqliteAdapter, DuckdbAdapter):
            assert cls.capabilities.pushdown
            assert cls.capabilities.pagination
            assert cls.capabilities.estimates_cardinality

    def test_engine_exposes_adapter(self):
        engine = QueryEngine(small_db(), EngineConfig(backend="sqlite"))
        assert engine.backend == "sqlite"
        assert engine.adapter.capabilities.pushdown
        engine.close()


class TestEngineConfig:
    def test_backend_canonicalized_at_construction(self):
        assert EngineConfig(backend=ExecutionBackend.ROW).backend == "row"
        assert EngineConfig(backend="SQLITE").backend == "sqlite"

    def test_cache_dir_fspathed(self, tmp_path):
        assert EngineConfig(cache_dir=tmp_path).cache_dir == str(tmp_path)

    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(QueryError):
            EngineConfig(backend="orc")

    def test_replace_with_engine_round_trip(self):
        config = AggCheckerConfig()
        varied = config.with_engine(backend="sqlite", cache_dir=None)
        assert varied.engine.backend == "sqlite"
        # The nested engine survives an unrelated replace().
        assert replace(varied, predicate_hits=5).engine.backend == "sqlite"
        # An explicit engine= replacement wins outright.
        swapped = replace(varied, engine=EngineConfig(backend="row"))
        assert swapped.engine.backend == "row"

    def test_replace_does_not_warn(self):
        config = AggCheckerConfig()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            replace(config, predicate_hits=3)
            config.with_engine(backend="row")


class TestDeprecationShims:
    def test_engine_keyword_backend_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="EngineConfig"):
            engine = QueryEngine(small_db(), backend="row")
        assert engine.backend == "row"

    def test_engine_disk_cache_keyword_warns(self, tmp_path):
        from repro.db.diskcache import DiskCubeCache

        with pytest.warns(DeprecationWarning, match="cache_dir"):
            engine = QueryEngine(small_db(), disk_cache=DiskCubeCache(tmp_path))
        assert engine.disk_cache is not None

    def test_positional_mode_is_sugar_not_deprecated(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = QueryEngine(small_db(), ExecutionMode.NAIVE)
        assert engine.mode is ExecutionMode.NAIVE

    def test_positional_mode_conflicts_with_keyword(self):
        with pytest.raises(TypeError, match="positionally"):
            QueryEngine(small_db(), ExecutionMode.NAIVE, mode=ExecutionMode.MERGED)

    def test_config_flat_kwargs_warn_and_map(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="with_engine"):
            config = AggCheckerConfig(
                execution_mode=ExecutionMode.NAIVE,
                backend="row",
                cache_dir=str(tmp_path),
                disk_cache_min_rows=7,
            )
        assert config.engine.mode is ExecutionMode.NAIVE
        assert config.engine.backend == "row"
        assert config.engine.cache_dir == str(tmp_path)
        assert config.engine.disk_cache_min_rows == 7

    def test_config_flat_reads_are_properties(self):
        config = AggCheckerConfig()
        assert config.execution_mode is config.engine.mode
        assert config.backend == config.engine.backend == "columnar"
        assert config.cache_dir is None
        assert config.disk_cache_min_rows is None

    def test_modern_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            QueryEngine(small_db(), EngineConfig(mode=ExecutionMode.NAIVE))
            AggCheckerConfig(engine=EngineConfig(backend="row"))


class TestCardinalityEstimates:
    @pytest.mark.parametrize("backend", ["columnar", "row", "sqlite"])
    def test_estimate_bounds_exact(self, backend):
        db = fanout_db()
        adapter = create_adapter(backend, db)
        try:
            tables = frozenset(["players", "teams"])
            estimate = adapter.estimated_cardinality(tables)
            exact = adapter.exact_cardinality(tables)
            assert estimate >= exact == 12
        finally:
            adapter.close()

    def test_in_memory_estimate_accounts_for_fanout(self):
        # Joining teams -> players multiplies by the players-per-team
        # multiplicity; the old len(first_table) estimate missed this.
        db = fanout_db(n_players_per_team=4, n_teams=3)
        adapter = create_adapter("columnar", db)
        tables = frozenset(["players", "teams"])
        assert adapter.estimated_cardinality(tables) >= 12

    def test_estimate_cube_cells_uses_row_bound(self):
        dims = ("a", "b", "c")
        literals = {d: frozenset({"x", "y", "z"}) for d in dims}
        unbounded = estimate_cube_cells(dims, literals)
        assert unbounded == 5**3
        # 2 rows can produce at most 2 base groups, each contributing to
        # 2^d rollup arms.
        assert estimate_cube_cells(dims, literals, estimated_rows=2) == 2 * 8
        # A huge row count never raises the literal-based bound.
        assert (
            estimate_cube_cells(dims, literals, estimated_rows=10**9)
            == unbounded
        )
        assert estimate_cube_cells(dims, literals, estimated_rows=0) == 0

    @pytest.mark.parametrize("backend", ["columnar", "row"])
    def test_budget_rejects_before_materializing(self, backend):
        db = fanout_db()
        engine = QueryEngine(db, EngineConfig(backend=backend))
        engine.budget = ResourceBudget(max_rows=3)
        query = parse_query(
            "SELECT Sum(salary) FROM players JOIN teams WHERE league = 'east'",
            db,
        )
        with pytest.raises(BudgetExceeded):
            engine.evaluate([query])
        assert engine.stats.budget_rejections == 1
        engine.close()

    def test_pushdown_adapter_exempt_from_rows_budget(self):
        # max_rows bounds Python-side materialization; the pushdown tier
        # never materializes the relation, so the same budget that rejects
        # the in-memory join admits it — this is the out-of-core contract.
        db = fanout_db()
        engine = QueryEngine(db, EngineConfig(backend="sqlite"))
        engine.budget = ResourceBudget(max_rows=3)
        query = parse_query(
            "SELECT Sum(salary) FROM players JOIN teams WHERE league = 'east'",
            db,
        )
        results = engine.evaluate([query])
        assert results[query] == sum(100 + i for _ in range(3) for i in range(4))
        assert engine.stats.budget_rejections == 0
        assert engine.stats.rows_materialized == 0
        engine.close()

    def test_budget_admits_exactly_at_the_limit(self):
        db = fanout_db()
        engine = QueryEngine(db, EngineConfig(backend="columnar"))
        engine.budget = ResourceBudget(max_rows=12)
        query = parse_query(
            "SELECT Sum(salary) FROM players JOIN teams WHERE league = 'east'",
            db,
        )
        results = engine.evaluate([query])
        assert results[query] == sum(100 + i for _ in range(3) for i in range(4))
        assert engine.stats.budget_rejections == 0
        engine.close()


class TestEngineStatsSurface:
    def test_pushdown_counters_flow_into_stats(self):
        db = small_db()
        engine = QueryEngine(db, EngineConfig(backend="sqlite"))
        query = parse_query("SELECT Count(*) FROM events WHERE kind = 'a'", db)
        assert engine.evaluate([query])[query] == 2
        assert engine.stats.pushdown_queries >= 1
        assert engine.stats.rows_materialized == 0
        engine.close()

    def test_in_memory_backend_counts_materialization(self):
        db = small_db()
        engine = QueryEngine(db, EngineConfig(backend="columnar"))
        query = parse_query("SELECT Count(*) FROM events WHERE kind = 'a'", db)
        engine.evaluate([query])
        assert engine.stats.pushdown_queries == 0
        assert engine.stats.rows_materialized == len(db.tables[0].rows)
