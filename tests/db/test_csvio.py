"""Unit tests for CSV loading and data dictionaries."""

from __future__ import annotations

import pytest

from repro.db import ColumnType, load_csv, load_csv_text
from repro.db.datadict import (
    apply_data_dictionary,
    load_data_dictionary,
    parse_data_dictionary,
)
from repro.errors import CsvFormatError, DataDictionaryError

CSV = """Name,Team,Games,Year
Ray Rice,BAL,2,2014
Art Schlichter,BAL,indef,1983
,,,
Josh Gordon,CLE,16,2014
"""


class TestLoadCsvText:
    def test_columns_and_rows(self):
        table = load_csv_text(CSV, "nfl")
        assert [c.name for c in table.columns] == ["Name", "Team", "Games", "Year"]
        assert len(table) == 3  # blank row skipped

    def test_type_inference(self):
        table = load_csv_text(CSV, "nfl")
        assert table.column("Year").type is ColumnType.NUMERIC
        assert table.column("Games").type is ColumnType.STRING

    def test_numeric_cells_converted(self):
        table = load_csv_text(CSV, "nfl")
        assert list(table.column_values("Year")) == [2014, 1983, 2014]

    def test_comment_lines_skipped(self):
        table = load_csv_text("# comment\na,b\n1,2\n", "t")
        assert len(table) == 1

    def test_short_rows_padded(self):
        table = load_csv_text("a,b,c\n1,2\n", "t")
        assert table.rows[0] == (1, 2, None)

    def test_long_rows_truncated(self):
        table = load_csv_text("a,b\n1,2,3\n", "t")
        assert table.rows[0] == (1, 2)

    def test_empty_input_rejected(self):
        with pytest.raises(CsvFormatError):
            load_csv_text("", "t")

    def test_blank_header_names_generated(self):
        table = load_csv_text("a,,c\n1,2,3\n", "t")
        assert [c.name for c in table.columns] == ["a", "column_2", "c"]

    def test_currency_and_separators(self):
        table = load_csv_text('price\n"$1,200"\n$800\n', "t")
        assert table.column("price").type is ColumnType.NUMERIC
        assert list(table.column_values("price")) == [1200, 800]


class TestLoadCsvFile:
    def test_load_from_path(self, tmp_path):
        path = tmp_path / "My Data-Set.csv"
        path.write_text(CSV)
        table = load_csv(path)
        assert table.name == "my_data_set"
        assert len(table) == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(CsvFormatError):
            load_csv(tmp_path / "nope.csv")


class TestDataDictionary:
    def test_parse_csv_format(self):
        mapping = parse_data_dictionary(
            "column,description\nGames,number of games suspended\n"
        )
        assert mapping == {"Games": "number of games suspended"}

    def test_parse_line_format(self):
        mapping = parse_data_dictionary(
            "Games: number of games suspended\nTeam: NFL team code\n"
        )
        assert mapping["Team"] == "NFL team code"

    def test_empty_rejected(self):
        with pytest.raises(DataDictionaryError):
            parse_data_dictionary("   ")

    def test_no_entries_rejected(self):
        with pytest.raises(DataDictionaryError):
            parse_data_dictionary("just some text without separators")

    def test_apply_to_table(self, nfl_table):
        updated = apply_data_dictionary(
            nfl_table, {"games": "number of games suspended"}
        )
        assert updated.column("Games").description == "number of games suspended"
        # Data and other columns are unchanged.
        assert len(updated) == len(nfl_table)
        assert updated.column("Team").description == ""

    def test_unknown_entries_ignored(self, nfl_table):
        updated = apply_data_dictionary(nfl_table, {"nonexistent": "x"})
        assert len(updated) == len(nfl_table)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "dict.csv"
        path.write_text("column,description\na,alpha\n")
        assert load_data_dictionary(path) == {"a": "alpha"}
