"""Unit tests for the query AST, SQL rendering, and parsing."""

from __future__ import annotations

import pytest

from repro.db import (
    AggregateFunction,
    AggregateSpec,
    ColumnRef,
    Predicate,
    STAR,
    SimpleAggregateQuery,
    parse_query,
    render_sql,
)
from hypothesis import given, settings

from repro.db.sql import describe_query, quote_identifier, render_sql_parameterized
from tests.db.strategies import claim_queries
from repro.errors import QueryError, SqlParseError


def count_star(*predicates):
    return SimpleAggregateQuery(
        AggregateSpec(AggregateFunction.COUNT, STAR), tuple(predicates)
    )


GAMES = ColumnRef("nflsuspensions", "Games")
CATEGORY = ColumnRef("nflsuspensions", "Category")
YEAR = ColumnRef("nflsuspensions", "Year")


class TestQueryModel:
    def test_predicates_canonicalized(self):
        q1 = count_star(Predicate(GAMES, "indef"), Predicate(CATEGORY, "gambling"))
        q2 = count_star(Predicate(CATEGORY, "gambling"), Predicate(GAMES, "indef"))
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_duplicate_column_rejected(self):
        with pytest.raises(QueryError):
            count_star(Predicate(GAMES, "indef"), Predicate(GAMES, "16"))

    def test_star_needs_count_family(self):
        with pytest.raises(QueryError):
            AggregateSpec(AggregateFunction.SUM, STAR)

    def test_conditional_probability_requires_condition(self):
        with pytest.raises(QueryError):
            SimpleAggregateQuery(
                AggregateSpec(AggregateFunction.CONDITIONAL_PROBABILITY, STAR)
            )

    def test_condition_only_for_conditional(self):
        with pytest.raises(QueryError):
            SimpleAggregateQuery(
                AggregateSpec(AggregateFunction.COUNT, STAR),
                (),
                Predicate(GAMES, "indef"),
            )

    def test_condition_column_disjoint_from_events(self):
        with pytest.raises(QueryError):
            SimpleAggregateQuery(
                AggregateSpec(AggregateFunction.CONDITIONAL_PROBABILITY, STAR),
                (Predicate(GAMES, "indef"),),
                Predicate(GAMES, "16"),
            )

    def test_all_predicates_condition_first(self):
        query = SimpleAggregateQuery(
            AggregateSpec(AggregateFunction.CONDITIONAL_PROBABILITY, STAR),
            (Predicate(CATEGORY, "gambling"),),
            Predicate(GAMES, "indef"),
        )
        assert query.all_predicates[0] == Predicate(GAMES, "indef")

    def test_referenced_tables(self):
        query = count_star(Predicate(GAMES, "indef"))
        assert query.referenced_tables() == frozenset({"nflsuspensions"})

    def test_predicate_rejects_star_and_null(self):
        with pytest.raises(QueryError):
            Predicate(STAR, "x")
        with pytest.raises(QueryError):
            Predicate(GAMES, None)


class TestRenderParse:
    def test_render_paper_style(self):
        query = count_star(Predicate(GAMES, "indef"))
        assert (
            render_sql(query)
            == "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'"
        )

    def test_roundtrip_simple(self, nfl_db):
        sql = "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'"
        query = parse_query(sql, nfl_db)
        assert parse_query(render_sql(query), nfl_db) == query

    def test_roundtrip_conditional(self, nfl_db):
        sql = (
            "SELECT ConditionalProbability(*) FROM nflsuspensions "
            "WHERE Games = 'indef' AND Category = 'gambling'"
        )
        query = parse_query(sql, nfl_db)
        assert query.condition is not None
        assert query.condition.column.column == "Games"
        assert parse_query(render_sql(query), nfl_db) == query

    def test_parse_numeric_value(self, nfl_db):
        query = parse_query(
            "SELECT Count(*) FROM nflsuspensions WHERE Year = 2014", nfl_db
        )
        assert query.predicates[0].value == 2014

    def test_parse_quoted_value_with_escape(self, nfl_db):
        query = parse_query(
            "SELECT Count(*) FROM nflsuspensions WHERE Category = 'i''m self-taught'",
            nfl_db,
        )
        assert query.predicates[0].value == "i'm self-taught"

    def test_parse_value_containing_and(self, nfl_db):
        query = parse_query(
            "SELECT Count(*) FROM nflsuspensions "
            "WHERE Category = 'conduct and behavior' AND Games = 'indef'",
            nfl_db,
        )
        assert len(query.predicates) == 2
        values = {p.value for p in query.predicates}
        assert "conduct and behavior" in values

    def test_parse_aggregate_column(self, nfl_db):
        query = parse_query("SELECT Sum(Year) FROM nflsuspensions", nfl_db)
        assert query.aggregate.column == YEAR

    def test_parse_average_alias(self, nfl_db):
        query = parse_query("SELECT Average(Year) FROM nflsuspensions", nfl_db)
        assert query.aggregate.function is AggregateFunction.AVG

    def test_single_table_star_is_tableless(self, nfl_db):
        query = parse_query("SELECT Count(*) FROM nflsuspensions", nfl_db)
        assert query.aggregate.column == STAR

    def test_multi_table_star_is_qualified(self, star_db):
        query = parse_query("SELECT Count(*) FROM players", star_db)
        assert query.aggregate.column == ColumnRef("players", "*")

    def test_join_query_parses(self, star_db):
        query = parse_query(
            "SELECT Sum(salary) FROM players JOIN teams WHERE city = 'boston'",
            star_db,
        )
        assert query.referenced_tables() == frozenset({"players", "teams"})

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM t",
            "SELECT Median(x) FROM nflsuspensions",
            "SELECT Count(*) FROM missing_table",
            "SELECT Count(*) FROM nflsuspensions WHERE Games > 3",
            "SELECT Count(*) FROM nflsuspensions WHERE Nope = 'x'",
            "DELETE FROM nflsuspensions",
        ],
    )
    def test_parse_errors(self, sql, nfl_db):
        with pytest.raises(SqlParseError):
            parse_query(sql, nfl_db)

    def test_conditional_without_predicates_rejected(self, nfl_db):
        with pytest.raises(SqlParseError):
            parse_query(
                "SELECT ConditionalProbability(*) FROM nflsuspensions", nfl_db
            )


class TestDescribe:
    def test_count_star(self):
        query = count_star(Predicate(GAMES, "indef"))
        assert describe_query(query) == "the number of rows where 'Games' is 'indef'"

    def test_conditional(self):
        query = SimpleAggregateQuery(
            AggregateSpec(AggregateFunction.CONDITIONAL_PROBABILITY, STAR),
            (Predicate(CATEGORY, "gambling"),),
            Predicate(GAMES, "indef"),
        )
        text = describe_query(query)
        assert "given that 'Games' is 'indef'" in text

    def test_average_column(self):
        query = SimpleAggregateQuery(
            AggregateSpec(AggregateFunction.AVG, YEAR)
        )
        assert describe_query(query) == "the average of 'Year' values"


class TestQuoteIdentifier:
    def test_plain_name_is_quoted(self):
        assert quote_identifier("Games") == '"Games"'

    def test_embedded_quote_doubled(self):
        assert quote_identifier('drink "type"') == '"drink ""type"""'

    def test_spaces_keywords_and_unicode_survive(self):
        for name in ("café sales", "select", "a b c", "préis", "抹茶"):
            quoted = quote_identifier(name)
            assert quoted[0] == quoted[-1] == '"'
            assert quoted[1:-1].replace('""', '"') == name

    def test_nul_byte_rejected(self):
        with pytest.raises(SqlParseError, match="NUL"):
            quote_identifier("bad\x00name")


class TestParameterizedSql:
    def test_literals_travel_as_params(self):
        query = count_star(
            Predicate(GAMES, "indef"), Predicate(CATEGORY, "gambling")
        )
        sql, params = render_sql_parameterized(query)
        assert sql == (
            'SELECT Count(*) FROM "nflsuspensions" '
            'WHERE "Category" = ? AND "Games" = ?'
        )
        assert params == ("gambling", "indef")
        assert "'" not in sql

    def test_condition_predicate_renders_first(self):
        query = SimpleAggregateQuery(
            AggregateSpec(AggregateFunction.CONDITIONAL_PROBABILITY, STAR),
            (Predicate(CATEGORY, "gambling"),),
            Predicate(GAMES, "indef"),
        )
        sql, params = render_sql_parameterized(query)
        assert params == ("indef", "gambling")
        assert sql.index('"Games"') < sql.index('"Category"')

    def test_aggregate_column_is_quoted(self):
        query = SimpleAggregateQuery(AggregateSpec(AggregateFunction.AVG, YEAR))
        sql, params = render_sql_parameterized(query)
        assert sql == 'SELECT Avg("Year") FROM "nflsuspensions"'
        assert params == ()

    def test_hostile_values_cannot_change_the_statement(self):
        import sqlite3

        connection = sqlite3.connect(":memory:")
        connection.execute('CREATE TABLE "nflsuspensions" ("Games", "Category")')
        connection.executemany(
            'INSERT INTO "nflsuspensions" VALUES (?, ?)',
            [("indef", "x' OR '1'='1"), ("indef", "gambling")],
        )
        query = count_star(Predicate(CATEGORY, "x' OR '1'='1"))
        sql, params = render_sql_parameterized(query)
        assert connection.execute(sql, params).fetchone()[0] == 1
        connection.close()

    @settings(max_examples=60, deadline=None)
    @given(query=claim_queries())
    def test_placeholder_count_matches_params(self, query):
        sql, params = render_sql_parameterized(query)
        assert sql.count("?") == len(params)
        assert params == tuple(p.value for p in query.all_predicates)
        # Literal values never leak into the statement text.
        for value in params:
            assert not (isinstance(value, str) and value and value in sql)

    @settings(max_examples=60, deadline=None)
    @given(query=claim_queries())
    def test_parameterized_agrees_with_display_form(self, query):
        """Property: parse(render(q)) == q AND the executable rendering
        names exactly the same identifiers as the display rendering."""
        display = render_sql(query)
        executable, _ = render_sql_parameterized(query)
        for predicate in query.all_predicates:
            assert f"'{predicate.normalized_value}'" not in executable
            assert quote_identifier(predicate.column.column) in executable
        assert display.startswith("SELECT")
