"""Unit tests for schema objects and acyclicity validation."""

from __future__ import annotations

import pytest

from repro.db import Column, ColumnType, Database, ForeignKey, Table
from repro.db.schema import infer_column_type
from repro.errors import (
    CyclicSchemaError,
    SchemaError,
    UnknownColumnError,
    UnknownTableError,
)


def make_table(name="t", cols=("a", "b")):
    return Table(name, [Column(c) for c in cols])


class TestColumn:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_default_type_is_string(self):
        assert Column("a").type is ColumnType.STRING


class TestTable:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            make_table(cols=("a", "a"))

    def test_row_width_checked(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.append((1,))

    def test_unknown_column(self):
        table = make_table()
        with pytest.raises(UnknownColumnError):
            table.column("zzz")

    def test_unknown_primary_key(self):
        with pytest.raises(UnknownColumnError):
            Table("t", [Column("a")], primary_key="b")

    def test_column_values(self):
        table = Table("t", [Column("a"), Column("b")], [(1, 2), (3, 4)])
        assert list(table.column_values("b")) == [2, 4]

    def test_numeric_columns(self):
        table = Table(
            "t", [Column("a"), Column("n", ColumnType.NUMERIC)]
        )
        assert [c.name for c in table.numeric_columns()] == ["n"]

    def test_distinct_values_skips_missing_and_dedups_case(self):
        table = Table(
            "t",
            [Column("a")],
            [("X",), ("x",), (None,), ("",), ("y",)],
        )
        assert table.distinct_values("a") == ["X", "y"]

    def test_distinct_values_limit(self):
        table = Table("t", [Column("a")], [(str(i),) for i in range(10)])
        assert len(table.distinct_values("a", limit=3)) == 3


class TestDatabase:
    def test_duplicate_table_names_rejected(self):
        with pytest.raises(SchemaError):
            Database("d", [make_table("t"), make_table("t")])

    def test_unknown_table(self, nfl_db):
        with pytest.raises(UnknownTableError):
            nfl_db.table("missing")

    def test_foreign_key_validated(self):
        with pytest.raises(UnknownColumnError):
            Database(
                "d",
                [make_table("t1"), make_table("t2")],
                [ForeignKey("t1", "zzz", "t2", "a")],
            )

    def test_self_reference_rejected(self):
        with pytest.raises(CyclicSchemaError):
            Database(
                "d",
                [make_table("t1")],
                [ForeignKey("t1", "a", "t1", "b")],
            )

    def test_cycle_rejected(self):
        tables = [make_table(n) for n in ("t1", "t2", "t3")]
        fks = [
            ForeignKey("t1", "a", "t2", "a"),
            ForeignKey("t2", "b", "t3", "a"),
            ForeignKey("t3", "b", "t1", "b"),
        ]
        with pytest.raises(CyclicSchemaError):
            Database("d", tables, fks)

    def test_parallel_edges_rejected(self):
        tables = [make_table("t1"), make_table("t2")]
        fks = [
            ForeignKey("t1", "a", "t2", "a"),
            ForeignKey("t1", "b", "t2", "b"),
        ]
        with pytest.raises(CyclicSchemaError):
            Database("d", tables, fks)

    def test_acyclic_accepted(self, star_db):
        assert {t.name for t in star_db.tables} == {"players", "teams"}

    def test_single_table(self, nfl_db, star_db):
        assert nfl_db.single_table().name == "nflsuspensions"
        with pytest.raises(SchemaError):
            star_db.single_table()

    def test_total_rows(self, star_db):
        assert star_db.total_rows() == 9


class TestInferColumnType:
    def test_all_numeric(self):
        assert infer_column_type(["1", "2", 3.5]) is ColumnType.NUMERIC

    def test_mostly_numeric_passes_threshold(self):
        values = ["1"] * 19 + ["n/a"]
        assert infer_column_type(values) is ColumnType.NUMERIC

    def test_mixed_fails_threshold(self):
        assert infer_column_type(["1", "x", "y"]) is ColumnType.STRING

    def test_empty_defaults_to_string(self):
        assert infer_column_type([]) is ColumnType.STRING

    def test_missing_ignored(self):
        assert infer_column_type([None, "", "7"]) is ColumnType.NUMERIC
