"""Unit tests for cell values and coercion."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.values import (
    DEFAULT_LITERAL,
    coerce_number,
    is_missing,
    is_numeric,
    normalize_string,
    value_sort_key,
    values_equal,
)


class TestIsMissing:
    def test_none_is_missing(self):
        assert is_missing(None)

    def test_empty_string_is_missing(self):
        assert is_missing("")

    def test_whitespace_is_missing(self):
        assert is_missing("   \t ")

    def test_zero_is_not_missing(self):
        assert not is_missing(0)

    def test_text_is_not_missing(self):
        assert not is_missing("indef")


class TestIsNumeric:
    def test_int(self):
        assert is_numeric(3)

    def test_float(self):
        assert is_numeric(3.5)

    def test_nan_rejected(self):
        assert not is_numeric(float("nan"))

    def test_bool_rejected(self):
        assert not is_numeric(True)

    def test_string_rejected(self):
        assert not is_numeric("3")


class TestCoerceNumber:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("42", 42),
            ("-7", -7),
            ("3.25", 3.25),
            ("1,234", 1234),
            ("$5,000", 5000),
            ("13%", 13),
            ("(250)", -250),
            ("  8  ", 8),
        ],
    )
    def test_parses(self, text, expected):
        assert coerce_number(text) == expected

    @pytest.mark.parametrize("text", ["", "indef", "n/a", "12abc", "--3", "nan"])
    def test_rejects(self, text):
        assert coerce_number(text) is None

    def test_passthrough_int(self):
        assert coerce_number(9) == 9

    def test_none(self):
        assert coerce_number(None) is None


class TestValuesEqual:
    def test_numeric_cross_type(self):
        assert values_equal(3, 3.0)

    def test_case_insensitive_strings(self):
        assert values_equal("Indef", "indef")

    def test_whitespace_stripped(self):
        assert values_equal(" gambling ", "gambling")

    def test_null_never_equal(self):
        assert not values_equal(None, None)
        assert not values_equal(None, "x")

    def test_number_vs_number_string(self):
        # String cells compare as strings: '4' vs 4 matches via normalization.
        assert values_equal("4", "4")

    def test_distinct_values(self):
        assert not values_equal("gambling", "substance abuse")


class TestSortKey:
    def test_order_null_number_string(self):
        items = ["beta", 3, None, 1.5, "alpha"]
        ordered = sorted(items, key=value_sort_key)
        assert ordered == [None, 1.5, 3, "alpha", "beta"]


class TestDefaultLiteral:
    def test_default_literal_distinct_from_lookalike_values(self):
        # The NUL prefix keeps the default bucket distinct from any printable
        # cell value, even one spelled like the marker itself.
        assert DEFAULT_LITERAL.startswith("\x00")
        assert normalize_string(" <Other> ") != DEFAULT_LITERAL
        assert normalize_string("<other>") != DEFAULT_LITERAL


@given(st.integers(min_value=-10**9, max_value=10**9))
def test_coerce_number_roundtrips_integers(number):
    assert coerce_number(str(number)) == number


@given(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    )
)
def test_coerce_number_roundtrips_floats(number):
    parsed = coerce_number(repr(number))
    assert parsed is not None
    assert math.isclose(parsed, number, rel_tol=1e-12, abs_tol=1e-12)


@given(st.text(max_size=20))
def test_values_equal_is_symmetric(text):
    assert values_equal(text, text.upper()) == values_equal(text.upper(), text)
