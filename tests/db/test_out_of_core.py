"""Out-of-core verification over file-backed SQLite databases.

The tentpole acceptance scenario: a SQLite file far larger than any
sane materialization budget is verified by the pushdown tier without a
single relation ever entering Python. ``EngineStats.rows_materialized``
is the proof. These tests are stdlib-only (no NumPy anywhere on the
sqlite path), so they also run on the no-NumPy CI leg; the 1M-row
variant of the same scenario lives in ``benchmarks/bench_sql_backend.py``.
"""

from __future__ import annotations

import os
import sqlite3
from dataclasses import replace

import pytest

from repro.budget import ResourceBudget
from repro.db import (
    Database,
    EngineConfig,
    ExecutionMode,
    ForeignKey,
    QueryEngine,
    parse_query,
)
from repro.db.adapters import SqlBackedTable, load_sqlite_database
from repro.db.diskcache import database_fingerprint
from repro.db.schema import ColumnType, SchemaError
from repro.errors import BudgetExceeded

#: Orders-table size: large enough that a max_rows=1000 budget is three
#: orders of magnitude below it, small enough to build in well under a
#: second. Divisible by the region (5) and status (3) cycles so expected
#: aggregates are exact closed forms.
N_ORDERS = 150_000

ZONES = {"r0": "east", "r1": "east", "r2": "west", "r3": "west", "r4": "west"}


def build_orders_file(path) -> str:
    """A two-table star schema written straight to a SQLite file."""
    connection = sqlite3.connect(os.fspath(path))
    try:
        connection.execute(
            "CREATE TABLE regions (region_id TEXT PRIMARY KEY, zone TEXT)"
        )
        connection.executemany(
            "INSERT INTO regions VALUES (?, ?)", sorted(ZONES.items())
        )
        connection.execute(
            "CREATE TABLE orders ("
            " order_id INTEGER PRIMARY KEY,"
            " region TEXT REFERENCES regions(region_id),"
            " status TEXT,"
            " amount INTEGER)"
        )
        connection.executemany(
            "INSERT INTO orders VALUES (?, ?, ?, ?)",
            (
                (
                    i,
                    f"r{i % 5}",
                    "open" if i % 3 == 0 else "closed",
                    i % 100,
                )
                for i in range(N_ORDERS)
            ),
        )
        connection.commit()
    finally:
        connection.close()
    return os.fspath(path)


@pytest.fixture(scope="module")
def orders_path(tmp_path_factory):
    return build_orders_file(
        tmp_path_factory.mktemp("outofcore") / "orders.sqlite"
    )


@pytest.fixture(scope="module")
def orders_db(orders_path) -> Database:
    return load_sqlite_database(orders_path)


def tiny_budget() -> ResourceBudget:
    """A materialization budget 150x below the orders table."""
    return ResourceBudget(max_rows=1000)


class TestOutOfCoreVerification:
    @pytest.mark.parametrize(
        "mode", [ExecutionMode.NAIVE, ExecutionMode.MERGED_CACHED]
    )
    def test_large_file_verifies_under_tiny_budget(self, orders_db, mode):
        engine = QueryEngine(
            orders_db, EngineConfig(mode=mode, backend="sqlite")
        )
        engine.budget = tiny_budget()
        queries = [
            parse_query(sql, orders_db)
            for sql in (
                "SELECT Count(*) FROM orders WHERE region = 'r0'",
                "SELECT Sum(amount) FROM orders WHERE region = 'r0'",
                "SELECT Avg(amount) FROM orders WHERE status = 'open'",
                "SELECT CountDistinct(region) FROM orders",
            )
        ]
        results = engine.evaluate(queries)
        r0_amounts = [(5 * k) % 100 for k in range(N_ORDERS // 5)]
        open_amounts = [(3 * k) % 100 for k in range(N_ORDERS // 3)]
        assert results[queries[0]] == N_ORDERS // 5
        assert results[queries[1]] == sum(r0_amounts)
        assert results[queries[2]] == pytest.approx(
            sum(open_amounts) / len(open_amounts)
        )
        assert results[queries[3]] == 5
        # The proof of pushdown: nothing was ever pulled into Python.
        assert engine.stats.rows_materialized == 0
        assert engine.stats.pushdown_queries >= 1
        assert engine.stats.budget_rejections == 0
        engine.close()

    def test_joined_query_stays_out_of_core(self, orders_db):
        engine = QueryEngine(orders_db, EngineConfig(backend="sqlite"))
        engine.budget = tiny_budget()
        query = parse_query(
            "SELECT Count(*) FROM orders JOIN regions WHERE zone = 'east'",
            orders_db,
        )
        east = sum(1 for i in range(N_ORDERS) if ZONES[f"r{i % 5}"] == "east")
        assert engine.evaluate([query])[query] == east
        assert engine.stats.rows_materialized == 0
        engine.close()

    def test_in_memory_backend_rejects_the_same_budget(self, orders_db):
        # The contrast that motivates the capability consultation: for an
        # in-memory adapter the relation IS the materialization, so the
        # identical budget refuses the same database outright.
        engine = QueryEngine(orders_db, EngineConfig(backend="columnar"))
        engine.budget = tiny_budget()
        query = parse_query("SELECT Count(*) FROM orders", orders_db)
        with pytest.raises(BudgetExceeded):
            engine.evaluate([query])
        assert engine.stats.budget_rejections == 1
        assert engine.stats.physical_queries == 0
        engine.close()

    def test_disk_cache_fast_fingerprint(self, orders_db, tmp_path):
        # content_token keeps fingerprinting O(schema), not O(rows), so
        # the disk tier works over the file without streaming it.
        engine = QueryEngine(
            orders_db, EngineConfig(backend="sqlite", cache_dir=tmp_path)
        )
        query = parse_query(
            "SELECT Count(*) FROM orders WHERE status = 'open'", orders_db
        )
        engine.evaluate([query])
        assert engine.stats.disk_misses >= 1
        assert engine.stats.rows_materialized == 0
        warm = QueryEngine(
            orders_db, EngineConfig(backend="sqlite", cache_dir=tmp_path)
        )
        warm.evaluate([query])
        assert warm.stats.disk_hits >= 1
        assert warm.stats.cube_queries == 0
        engine.close()
        warm.close()


class TestSqlBackedTable:
    def test_len_is_pushed_down_count(self, orders_db):
        orders = next(t for t in orders_db.tables if t.name == "orders")
        assert isinstance(orders, SqlBackedTable)
        assert len(orders.rows) == N_ORDERS

    def test_rows_stream_lazily(self, orders_path):
        database = load_sqlite_database(orders_path)
        orders = next(t for t in database.tables if t.name == "orders")
        iterator = iter(orders.rows)
        first = next(iterator)
        assert first == (0, "r0", "open", 0)
        # Indexing round-trips through LIMIT/OFFSET, negatives included.
        assert orders.rows[1] == (1, "r1", "closed", 1)
        assert orders.rows[-1] == (
            N_ORDERS - 1,
            f"r{(N_ORDERS - 1) % 5}",
            "open" if (N_ORDERS - 1) % 3 == 0 else "closed",
            (N_ORDERS - 1) % 100,
        )
        with pytest.raises(IndexError):
            orders.rows[N_ORDERS]

    def test_full_iteration_matches_count(self, tmp_path):
        path = tmp_path / "small.sqlite"
        connection = sqlite3.connect(os.fspath(path))
        connection.execute("CREATE TABLE t (a TEXT, b INTEGER)")
        connection.executemany(
            "INSERT INTO t VALUES (?, ?)", ((f"v{i}", i) for i in range(5000))
        )
        connection.commit()
        connection.close()
        table = next(iter(load_sqlite_database(path).tables))
        rows = list(table.rows)
        assert len(rows) == len(table.rows) == 5000
        assert rows[0] == ("v0", 0)
        assert rows[-1] == ("v4999", 4999)

    def test_append_refused(self, orders_db):
        orders = next(t for t in orders_db.tables if t.name == "orders")
        with pytest.raises(SchemaError, match="read-only"):
            orders.append((N_ORDERS, "r0", "open", 1))

    def test_with_columns_stays_lazy(self, orders_db):
        orders = next(t for t in orders_db.tables if t.name == "orders")
        # The data-dictionary layer swaps column metadata in; the result
        # must stay file-backed rather than degrade to an eager copy.
        annotated = orders.with_columns(
            [replace(c, description=f"doc for {c.name}") for c in orders.columns]
        )
        assert isinstance(annotated, SqlBackedTable)
        assert all(c.description.startswith("doc for ") for c in annotated.columns)
        assert annotated.primary_key == "order_id"
        assert len(annotated.rows) == N_ORDERS
        with pytest.raises(SchemaError, match="expected 4 columns"):
            orders.with_columns(orders.columns[:2])

    def test_content_token_tracks_file_changes(self, tmp_path):
        path = tmp_path / "token.sqlite"
        connection = sqlite3.connect(os.fspath(path))
        connection.execute("CREATE TABLE t (a TEXT)")
        connection.execute("INSERT INTO t VALUES ('x')")
        connection.commit()
        connection.close()
        table = next(iter(load_sqlite_database(path).tables))
        before = table.content_token()
        assert before == table.content_token()
        connection = sqlite3.connect(os.fspath(path))
        connection.execute("INSERT INTO t VALUES ('y')")
        connection.commit()
        connection.close()
        os.utime(path)  # coarse-mtime filesystems
        assert table.content_token() != before


class TestLoaderIntrospection:
    def test_schema_and_foreign_keys(self, orders_db):
        assert {t.name for t in orders_db.tables} == {"orders", "regions"}
        assert list(orders_db.foreign_keys) == [
            ForeignKey("orders", "region", "regions", "region_id")
        ]
        orders = next(t for t in orders_db.tables if t.name == "orders")
        assert orders.primary_key == "order_id"
        types = {c.name: c.type for c in orders.columns}
        assert types["amount"] is ColumnType.NUMERIC
        assert types["status"] is ColumnType.STRING

    def test_database_name_defaults_to_stem(self, orders_db, orders_path):
        assert orders_db.name == "orders"
        assert orders_db.sqlite_path == orders_path

    def test_missing_file_is_a_schema_error(self, tmp_path):
        with pytest.raises(SchemaError, match="no such SQLite database"):
            load_sqlite_database(tmp_path / "absent.sqlite")

    def test_empty_database_is_a_schema_error(self, tmp_path):
        path = tmp_path / "empty.sqlite"
        sqlite3.connect(os.fspath(path)).close()
        with pytest.raises(SchemaError, match="no tables"):
            load_sqlite_database(path)

    def test_fingerprint_changes_with_file_content(self, tmp_path):
        path = tmp_path / "fp.sqlite"
        connection = sqlite3.connect(os.fspath(path))
        connection.execute("CREATE TABLE t (a TEXT)")
        connection.execute("INSERT INTO t VALUES ('x')")
        connection.commit()
        connection.close()
        before = database_fingerprint(load_sqlite_database(path))
        connection = sqlite3.connect(os.fspath(path))
        connection.execute("INSERT INTO t VALUES ('y')")
        connection.commit()
        connection.close()
        os.utime(path)
        after = database_fingerprint(load_sqlite_database(path))
        assert before != after
