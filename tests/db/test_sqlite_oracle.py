"""Bit-identity oracle for the SQLite pushdown adapter.

The acceptance contract of the SQL tier is *exact* agreement with the
row-wise in-memory executor — same values AND same Python types — across
NULL-heavy data, joins with dangling keys, empty groups, duplicate keys,
messy numerics, and unicode. The suite runs entirely on the stdlib (no
NumPy anywhere on the sqlite/row paths), so it also covers the no-NumPy
CI leg.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Column,
    ColumnType,
    Database,
    EngineConfig,
    ExecutionMode,
    QueryEngine,
    Table,
    parse_query,
)

from tests.db.strategies import (
    claim_queries,
    conditional_queries,
    joined_databases,
    joined_queries,
    nullheavy_databases,
    small_databases,
)

MODES = (ExecutionMode.NAIVE, ExecutionMode.MERGED_CACHED)

#: Every installed SQL adapter is held to the same bit-identity bar; the
#: CI duckdb leg installs the optional dependency and lands here too.
from repro.db.adapters import DuckdbAdapter

SQL_BACKENDS = ("sqlite",) + (
    ("duckdb",) if DuckdbAdapter.available() else ()
)


def assert_bit_equal(expected, actual, context: str) -> None:
    """Same value, same type; floats compared by repr (NaN, -0.0)."""
    assert type(expected) is type(actual), (
        f"{context}: type {type(expected).__name__} != {type(actual).__name__}"
        f" ({expected!r} vs {actual!r})"
    )
    if isinstance(expected, float):
        assert repr(expected) == repr(actual), context
    else:
        assert expected == actual, f"{context}: {expected!r} != {actual!r}"


def assert_engines_agree(database, queries, backends=SQL_BACKENDS):
    for backend in backends:
        for mode in MODES:
            oracle = QueryEngine(
                database, EngineConfig(mode=mode, backend="row")
            )
            sql = QueryEngine(database, EngineConfig(mode=mode, backend=backend))
            expected = oracle.evaluate(queries)
            actual = sql.evaluate(queries)
            for query in set(queries):
                assert_bit_equal(
                    expected[query],
                    actual[query],
                    f"{backend} {mode.value} {query}",
                )
            # The pushdown tier never pulls the relation into Python.
            assert sql.stats.rows_materialized == 0
            assert sql.stats.pushdown_queries >= 1 or not queries
            # Both tiers report the same scan accounting per evaluate().
            assert sql.stats.rows_scanned == oracle.stats.rows_scanned
            sql.close()
            oracle.close()


class TestRandomizedOracle:
    @settings(max_examples=60, deadline=None)
    @given(
        database=small_databases() | nullheavy_databases(),
        queries=st.lists(
            claim_queries() | conditional_queries(), min_size=1, max_size=8
        ),
    )
    def test_single_table_bit_identity(self, database, queries):
        assert_engines_agree(database, queries)

    @settings(max_examples=40, deadline=None)
    @given(
        database=joined_databases(),
        queries=st.lists(joined_queries(), min_size=1, max_size=6),
    )
    def test_joined_bit_identity(self, database, queries):
        """NULL join keys and dangling foreign keys drop identically."""
        assert_engines_agree(database, queries)


def run_queries(database, sqls):
    queries = [parse_query(sql, database) for sql in sqls]
    assert_engines_agree(database, queries)


class TestEdgeCases:
    def test_empty_relation_has_no_groups(self):
        table = Table(
            "facts",
            [Column("category"), Column("amount", ColumnType.NUMERIC)],
            [],
        )
        run_queries(
            Database("empty", [table]),
            [
                "SELECT Count(*) FROM facts",
                "SELECT Sum(amount) FROM facts",
                "SELECT Avg(amount) FROM facts WHERE category = 'alpha'",
                "SELECT Percentage(*) FROM facts WHERE category = 'alpha'",
            ],
        )

    def test_all_null_column(self):
        table = Table(
            "facts",
            [Column("category"), Column("amount", ColumnType.NUMERIC)],
            [(None, None), (None, None), ("alpha", None)],
        )
        run_queries(
            Database("nulls", [table]),
            [
                "SELECT Count(amount) FROM facts",
                "SELECT CountDistinct(category) FROM facts",
                "SELECT Sum(amount) FROM facts",
                "SELECT Min(amount) FROM facts WHERE category = 'alpha'",
            ],
        )

    def test_duplicate_keys_and_rows(self):
        rows = [("alpha", 3), ("alpha", 3), ("ALPHA  ", 3), ("alpha", -3)] * 5
        table = Table(
            "facts",
            [Column("category"), Column("amount", ColumnType.NUMERIC)],
            rows,
        )
        run_queries(
            Database("dupes", [table]),
            [
                "SELECT Count(*) FROM facts WHERE category = 'alpha'",
                "SELECT CountDistinct(category) FROM facts",
                "SELECT Sum(amount) FROM facts WHERE category = 'alpha'",
                "SELECT Avg(amount) FROM facts",
            ],
        )

    def test_unicode_values_and_identifiers(self):
        # Identifiers with spaces, quotes, and non-ASCII letters cannot be
        # written in the paper's display SQL; build the queries directly.
        from repro.db import (
            AggregateFunction,
            AggregateSpec,
            ColumnRef,
            Predicate,
            STAR,
            SimpleAggregateQuery,
        )

        table = Table(
            "café sales",
            [Column('drink "type"'), Column("préis", ColumnType.NUMERIC)],
            [
                ("Caffè  LATTE", 4),
                ("caffè latte", 5),
                ("ĿATTE", 6),
                ("抹茶", 7),
                (None, 8),
            ],
        )
        database = Database("unicode", [table])
        drink = ColumnRef("café sales", 'drink "type"')
        price = ColumnRef("café sales", "préis")
        queries = [
            SimpleAggregateQuery(
                AggregateSpec(AggregateFunction.COUNT, STAR),
                (Predicate(drink, "caffè latte"),),
            ),
            SimpleAggregateQuery(
                AggregateSpec(AggregateFunction.COUNT_DISTINCT, drink), ()
            ),
            SimpleAggregateQuery(
                AggregateSpec(AggregateFunction.SUM, price),
                (Predicate(drink, "抹茶"),),
            ),
        ]
        assert_engines_agree(database, queries)

    def test_messy_numeric_coercion(self):
        rows = [
            ("a", "1,200"),
            ("a", "$40"),
            ("a", "12%"),
            ("b", "(3)"),
            ("b", "n/a"),
            ("b", "  7  "),
            ("b", ""),
            ("c", True),
            ("c", False),
            ("c", float("nan")),
            ("c", float("inf")),
        ]
        table = Table(
            "facts",
            [Column("category"), Column("amount", ColumnType.NUMERIC)],
            rows,
        )
        run_queries(
            Database("messy", [table]),
            [
                "SELECT Sum(amount) FROM facts WHERE category = 'a'",
                "SELECT Count(amount) FROM facts",
                "SELECT Min(amount) FROM facts WHERE category = 'b'",
                "SELECT Max(amount) FROM facts",
                "SELECT Avg(amount) FROM facts WHERE category = 'c'",
            ],
        )

    def test_int64_overflow_and_huge_values(self):
        rows = [
            ("a", 2**63),  # beyond SQLite INTEGER
            ("a", -(2**64)),
            ("b", 2**62),
            ("b", 1),
        ]
        table = Table(
            "facts",
            [Column("category"), Column("amount", ColumnType.NUMERIC)],
            rows,
        )
        run_queries(
            Database("big", [table]),
            [
                "SELECT Count(amount) FROM facts",
                "SELECT Sum(amount) FROM facts WHERE category = 'b'",
                "SELECT Max(amount) FROM facts WHERE category = 'b'",
            ],
        )

    def test_float_totals_match_reference_accumulator(self):
        # SUM over ints through the cube path returns float (the paper
        # engine's accumulator seeds total=0.0); the naive path keeps int.
        table = Table(
            "facts",
            [Column("category"), Column("amount", ColumnType.NUMERIC)],
            [("a", 1), ("a", 2)],
        )
        database = Database("sums", [table])
        query = parse_query("SELECT Sum(amount) FROM facts WHERE category = 'a'", database)
        naive = QueryEngine(
            database, EngineConfig(mode=ExecutionMode.NAIVE, backend="sqlite")
        ).evaluate([query])[query]
        cubed = QueryEngine(
            database,
            EngineConfig(mode=ExecutionMode.MERGED_CACHED, backend="sqlite"),
        ).evaluate([query])[query]
        assert type(naive) is int and naive == 3
        assert type(cubed) is float and cubed == 3.0


@pytest.mark.needs_numpy
class TestCorpusVerdictIdentity:
    @pytest.mark.parametrize("backend", SQL_BACKENDS)
    def test_sql_backend_reproduces_columnar_verdicts(self, backend):
        """Full-pipeline acceptance: every builtin-corpus verdict under
        ``--backend sqlite`` (or duckdb) is the columnar verdict, bit for
        bit."""
        from repro.core.config import AggCheckerConfig
        from repro.corpus import generate_corpus
        from repro.harness import run_corpus

        corpus = generate_corpus()
        reference = run_corpus(
            corpus, AggCheckerConfig(engine=EngineConfig(backend="columnar"))
        )
        pushdown = run_corpus(
            corpus, AggCheckerConfig(engine=EngineConfig(backend=backend))
        )
        assert len(reference.results) == len(pushdown.results) > 0
        for expected, actual in zip(reference.results, pushdown.results):
            left = [
                (v.claim.mention.text, v.status, v.hover_text)
                for v in expected.report.verdicts
            ]
            right = [
                (v.claim.mention.text, v.status, v.hover_text)
                for v in actual.report.verdicts
            ]
            assert left == right


class TestDiskCacheInterop:
    def test_sqlite_cells_never_cross_backends(self, tmp_path):
        table = Table(
            "events",
            [Column("kind"), Column("score", ColumnType.NUMERIC)],
            [("a", 1), ("a", 2), ("b", 3)],
        )
        db = Database("d", [table])
        query = parse_query("SELECT Count(*) FROM events WHERE kind = 'a'", db)
        sql_engine = QueryEngine(
            db, EngineConfig(backend="sqlite", cache_dir=tmp_path)
        )
        sql_engine.evaluate([query])
        assert sql_engine.stats.disk_misses == 1

        # Same backend: warm.
        warm = QueryEngine(db, EngineConfig(backend="sqlite", cache_dir=tmp_path))
        warm.evaluate([query])
        assert warm.stats.disk_hits == 1
        assert warm.stats.cube_queries == 0

        # Different backend: cold (cells are keyed by adapter name).
        other = QueryEngine(db, EngineConfig(backend="row", cache_dir=tmp_path))
        other.evaluate([query])
        assert other.stats.disk_hits == 0
        assert other.stats.cube_queries == 1
