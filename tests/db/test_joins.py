"""Unit tests for join-path discovery and relation materialization."""

from __future__ import annotations

import pytest

from repro.db import Column, ColumnRef, Database, ForeignKey, Table
from repro.db.joins import JoinGraph
from repro.errors import JoinPathError, UnknownTableError


class TestJoinPath:
    def test_single_table(self, star_db):
        graph = JoinGraph(star_db)
        path = graph.join_path({"players"})
        assert path.tables == ("players",)
        assert path.edges == ()

    def test_two_tables(self, star_db):
        graph = JoinGraph(star_db)
        path = graph.join_path({"players", "teams"})
        assert set(path.tables) == {"players", "teams"}
        assert len(path.edges) == 1

    def test_unknown_table(self, star_db):
        with pytest.raises(UnknownTableError):
            JoinGraph(star_db).join_path({"nope"})

    def test_disconnected_tables(self):
        db = Database(
            "d",
            [Table("a", [Column("x")]), Table("b", [Column("y")])],
        )
        with pytest.raises(JoinPathError):
            JoinGraph(db).join_path({"a", "b"})

    def test_intermediate_table_included(self):
        """a-b-c chain: joining {a, c} must pull in b."""
        tables = [
            Table("a", [Column("id"), Column("b_ref")]),
            Table("b", [Column("id"), Column("c_ref")]),
            Table("c", [Column("id")]),
        ]
        fks = [
            ForeignKey("a", "b_ref", "b", "id"),
            ForeignKey("b", "c_ref", "c", "id"),
        ]
        graph = JoinGraph(Database("d", tables, fks))
        path = graph.join_path({"a", "c"})
        assert set(path.tables) == {"a", "b", "c"}
        assert len(path.edges) == 2


class TestRelation:
    def test_single_table_relation(self, star_db):
        graph = JoinGraph(star_db)
        relation = graph.relation({"players"})
        assert len(relation) == 6
        assert relation.has_column(ColumnRef("players", "salary"))

    def test_join_relation_row_count(self, star_db):
        graph = JoinGraph(star_db)
        relation = graph.relation({"players", "teams"})
        # Every player matches exactly one team.
        assert len(relation) == 6
        assert relation.has_column(ColumnRef("teams", "city"))

    def test_join_values_aligned(self, star_db):
        graph = JoinGraph(star_db)
        relation = graph.relation({"players", "teams"})
        player_team = relation.column_index(ColumnRef("players", "team"))
        team_id = relation.column_index(ColumnRef("teams", "team_id"))
        for row in relation.rows:
            assert row[player_team] == row[team_id]

    def test_join_drops_unmatched(self):
        left = Table(
            "orders", [Column("id"), Column("cust")], [("o1", "c1"), ("o2", "zz")]
        )
        right = Table("customers", [Column("id")], [("c1",)])
        db = Database(
            "d", [left, right], [ForeignKey("orders", "cust", "customers", "id")]
        )
        relation = JoinGraph(db).relation({"orders", "customers"})
        assert len(relation) == 1

    def test_join_null_keys_dropped(self):
        left = Table("l", [Column("k")], [(None,), ("c1",)])
        right = Table("r", [Column("k")], [("c1",)])
        db = Database("d", [left, right], [ForeignKey("l", "k", "r", "k")])
        relation = JoinGraph(db).relation({"l", "r"})
        assert len(relation) == 1

    def test_memoized(self, star_db):
        graph = JoinGraph(star_db)
        first = graph.relation({"players", "teams"})
        second = graph.relation({"teams", "players"})
        assert first is second
        graph.clear_memo()
        assert graph.relation({"players", "teams"}) is not first

    def test_case_insensitive_join_keys(self):
        left = Table("l", [Column("k")], [("ABC",)])
        right = Table("r", [Column("k")], [("abc",)])
        db = Database("d", [left, right], [ForeignKey("l", "k", "r", "k")])
        assert len(JoinGraph(db).relation({"l", "r"})) == 1

    def test_column_index_missing(self, star_db):
        relation = JoinGraph(star_db).relation({"players"})
        with pytest.raises(JoinPathError):
            relation.column_index(ColumnRef("teams", "city"))
