"""Tests for the persistent cube cache: fingerprints, the disk tier, and
CSV-edit invalidation."""

from __future__ import annotations

import pickle

import pytest

from repro.db import (
    Column,
    ColumnType,
    Database,
    EngineConfig,
    EngineStats,
    ExecutionMode,
    ForeignKey,
    QueryEngine,
    Table,
    database_fingerprint,
    load_csv,
    parse_query,
)
from repro.db.cube import ALL


def small_db(rows=None) -> Database:
    table = Table(
        "events",
        [Column("kind"), Column("score", ColumnType.NUMERIC)],
        rows
        if rows is not None
        else [("a", 1), ("a", 2), ("b", 3), (None, 4)],
    )
    return Database("d", [table])


class TestFingerprint:
    def test_deterministic(self):
        assert database_fingerprint(small_db()) == database_fingerprint(
            small_db()
        )

    def test_cell_edit_changes_fingerprint(self):
        edited = small_db([("a", 1), ("a", 2), ("b", 3), (None, 5)])
        assert database_fingerprint(small_db()) != database_fingerprint(edited)

    def test_added_row_changes_fingerprint(self):
        grown = small_db([("a", 1), ("a", 2), ("b", 3), (None, 4), ("c", 9)])
        assert database_fingerprint(small_db()) != database_fingerprint(grown)

    def test_value_type_distinguished(self):
        as_string = small_db([("a", "1"), ("a", 2), ("b", 3), (None, 4)])
        assert database_fingerprint(small_db()) != database_fingerprint(
            as_string
        )

    def test_column_type_changes_fingerprint(self):
        table = Table(
            "events",
            [Column("kind"), Column("score")],
            [("a", 1), ("a", 2), ("b", 3), (None, 4)],
        )
        assert database_fingerprint(small_db()) != database_fingerprint(
            Database("d", [table])
        )

    def test_foreign_keys_included(self, star_db):
        bare = Database("sports", star_db.tables)
        assert database_fingerprint(star_db) != database_fingerprint(bare)

    def test_none_vs_empty_string_distinguished(self):
        with_none = small_db([(None, 1)])
        with_empty = small_db([("", 1)])
        assert database_fingerprint(with_none) != database_fingerprint(
            with_empty
        )


class TestAllMarkerPickle:
    def test_singleton_survives_round_trip(self):
        key = ("a", ALL, "b")
        restored = pickle.loads(pickle.dumps(key))
        assert restored[1] is ALL
        assert restored == key


def count_by_kind(db):
    return parse_query("SELECT Count(*) FROM events WHERE kind = 'a'", db)


class TestDiskTier:
    def test_second_engine_serves_from_disk(self, tmp_path):
        db = small_db()
        cold = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        cold_results = cold.evaluate([count_by_kind(db)])
        assert cold.stats.cube_queries == 1
        assert cold.stats.disk_misses == 1
        assert cold.stats.disk_hits == 0

        warm = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        warm_results = warm.evaluate([count_by_kind(db)])
        assert warm_results == cold_results
        assert warm.stats.cube_queries == 0
        assert warm.stats.disk_hits == 1
        assert warm.stats.disk_misses == 0

    def test_uncovered_literal_is_miss_then_merges(self, tmp_path):
        db = small_db()
        first = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        first.evaluate([count_by_kind(db)])

        other = parse_query(
            "SELECT Count(*) FROM events WHERE kind = 'b'", db
        )
        second = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        results = second.evaluate([other])
        assert results[other] == 1
        assert second.stats.disk_misses == 1
        assert second.stats.cube_queries == 1

        # The store merged coverage: a third engine answers both literals
        # from disk.
        third = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        both = third.evaluate([count_by_kind(db), other])
        assert both[other] == 1
        assert third.stats.cube_queries == 0
        assert third.stats.disk_hits >= 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        db = small_db()
        QueryEngine(db, EngineConfig(cache_dir=tmp_path)).evaluate(
            [count_by_kind(db)]
        )
        for path in tmp_path.glob("*.cube"):
            path.write_bytes(b"not a pickle")
        engine = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        results = engine.evaluate([count_by_kind(db)])
        assert results[count_by_kind(db)] == 2
        assert engine.stats.disk_hits == 0
        assert engine.stats.cube_queries == 1

    @pytest.mark.faults
    def test_corrupt_entry_is_quarantined_and_counted(self, tmp_path):
        db = small_db()
        QueryEngine(db, EngineConfig(cache_dir=tmp_path)).evaluate(
            [count_by_kind(db)]
        )
        cube_names = {path.name for path in tmp_path.glob("*.cube")}
        assert cube_names
        for path in tmp_path.glob("*.cube"):
            path.write_bytes(b"not a pickle")

        engine = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        cache = engine.disk_cache
        results = engine.evaluate([count_by_kind(db)])
        assert results[count_by_kind(db)] == 2
        # The bad file was moved aside (kept for post-mortem, never
        # re-read), the corruption counted in both stats surfaces, and
        # the recomputation re-stored a fresh readable entry.
        assert cache.stats.corrupt == 1
        assert cache.stats.errors == 1
        assert engine.stats.disk_corrupt == 1
        quarantined = {path.name for path in tmp_path.glob("*.cube.corrupt")}
        assert quarantined == {name + ".corrupt" for name in cube_names}
        assert {path.name for path in tmp_path.glob("*.cube")} == cube_names

        fresh = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        fresh.evaluate([count_by_kind(db)])
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.disk_corrupt == 0

    @pytest.mark.faults
    def test_injected_read_corruption(self, tmp_path):
        # Same contract, driven through the fault injector instead of
        # hand-written bytes: the 'corrupt' action scribbles on the cell
        # file just before the production read path deserializes it.
        from repro.faults import FaultSpec, active

        db = small_db()
        QueryEngine(db, EngineConfig(cache_dir=tmp_path)).evaluate(
            [count_by_kind(db)]
        )
        engine = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        cache = engine.disk_cache
        with active(FaultSpec("diskcache.read", "corrupt", match="*.cube")):
            results = engine.evaluate([count_by_kind(db)])
        assert results[count_by_kind(db)] == 2
        assert cache.stats.corrupt == 1
        assert engine.stats.disk_corrupt == 1
        assert engine.stats.cube_queries == 1
        assert list(tmp_path.glob("*.cube.corrupt"))

    def test_backends_never_exchange_cells(self, tmp_path):
        db = small_db()
        columnar = QueryEngine(
            db, EngineConfig(backend="columnar", cache_dir=tmp_path)
        )
        columnar.evaluate([count_by_kind(db)])
        # The row-wise engine has (documented) different edge-case
        # semantics; it must not read the columnar engine's cells.
        row = QueryEngine(
            db, EngineConfig(backend="row", cache_dir=tmp_path)
        )
        row.evaluate([count_by_kind(db)])
        assert row.stats.disk_hits == 0
        assert row.stats.cube_queries == 1

    def test_naive_mode_ignores_disk_cache(self, tmp_path):
        db = small_db()
        engine = QueryEngine(
            db, EngineConfig(mode=ExecutionMode.NAIVE, cache_dir=tmp_path)
        )
        engine.evaluate([count_by_kind(db)])
        assert engine.stats.disk_hits == engine.stats.disk_misses == 0

    def test_clear_removes_entries(self, tmp_path):
        db = small_db()
        engine = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        engine.evaluate([count_by_kind(db)])
        assert list(tmp_path.glob("*.cube"))
        engine.disk_cache.clear()
        assert not list(tmp_path.glob("*.cube"))


class TestCsvInvalidation:
    CSV = "kind,score\na,1\na,2\nb,3\n"

    def _database(self, csv_path):
        return Database("d", [load_csv(csv_path, "events")])

    def test_edited_csv_forces_reexecution(self, tmp_path):
        csv_path = tmp_path / "events.csv"
        cache_dir = tmp_path / "cache"
        csv_path.write_text(self.CSV)

        db = self._database(csv_path)
        engine = QueryEngine(db, EngineConfig(cache_dir=cache_dir))
        assert engine.evaluate([count_by_kind(db)])[count_by_kind(db)] == 2

        # The data changes: another 'a' row lands in the CSV.
        csv_path.write_text(self.CSV + "a,9\n")
        updated = self._database(csv_path)
        fresh = QueryEngine(updated, EngineConfig(cache_dir=cache_dir))
        query = count_by_kind(updated)
        # New fingerprint: the stale cached cell (2) must not be served.
        assert fresh.evaluate([query])[query] == 3
        assert fresh.stats.disk_hits == 0
        assert fresh.stats.disk_misses == 1
        assert fresh.stats.cube_queries == 1

    def test_unchanged_csv_reuses_cache(self, tmp_path):
        csv_path = tmp_path / "events.csv"
        cache_dir = tmp_path / "cache"
        csv_path.write_text(self.CSV)
        first = self._database(csv_path)
        QueryEngine(first, EngineConfig(cache_dir=cache_dir)).evaluate(
            [count_by_kind(first)]
        )
        # Re-reading the identical file yields the same fingerprint.
        again = self._database(csv_path)
        engine = QueryEngine(again, EngineConfig(cache_dir=cache_dir))
        engine.evaluate([count_by_kind(again)])
        assert engine.stats.disk_hits == 1
        assert engine.stats.cube_queries == 0


class TestEngineStatsMerge:
    def _distinct(self, start: int) -> EngineStats:
        from dataclasses import fields

        stats = EngineStats()
        for offset, spec in enumerate(fields(EngineStats)):
            setattr(stats, spec.name, start + offset)
        return stats

    def test_merge_covers_every_field(self):
        from dataclasses import fields

        merged = self._distinct(10).merge(self._distinct(100))
        for offset, spec in enumerate(fields(EngineStats)):
            assert getattr(merged, spec.name) == 110 + 2 * offset

    def test_iadd_and_copy(self):
        total = EngineStats()
        part = self._distinct(1)
        snapshot = part.copy()
        total += part
        assert total == part == snapshot
        assert total is not part

    def test_diff_recovers_delta(self):
        before = self._distinct(5)
        after = self._distinct(5).merge(self._distinct(2))
        delta = after.diff(before)
        assert delta == self._distinct(2)

    def test_reset_restores_defaults(self):
        stats = self._distinct(3)
        stats.reset()
        assert stats == EngineStats()

    def test_hit_rates(self):
        stats = EngineStats(cache_hits=3, cache_misses=1, disk_hits=9,
                            disk_misses=1)
        assert stats.cache_hit_rate() == pytest.approx(0.75)
        assert stats.disk_hit_rate() == pytest.approx(0.9)
        assert EngineStats().cache_hit_rate() == 0.0
        assert EngineStats().disk_hit_rate() == 0.0
