"""Unit tests for claim detection heuristics."""

from __future__ import annotations

from repro.text import ClaimDetectionConfig, Document, detect_claims


def doc(*paragraphs):
    return Document.from_plain_text("Title", list(paragraphs))


class TestDetectClaims:
    def test_digit_claim(self):
        claims = detect_claims(doc("They gave money to 63 candidates."))
        assert len(claims) == 1
        assert claims[0].claimed_value == 63

    def test_spelled_claim(self):
        claims = detect_claims(doc("There were only four lifetime bans."))
        assert claims[0].claimed_value == 4

    def test_multiple_claims_one_sentence(self):
        claims = detect_claims(
            doc("Three were for substance abuse, one was for gambling.")
        )
        assert [c.claimed_value for c in claims] == [3, 1]

    def test_percentage_claim(self):
        claims = detect_claims(doc("13% of respondents are self-taught."))
        assert claims[0].is_percentage_claim

    def test_years_skipped_by_default(self):
        assert detect_claims(doc("The rule changed in 2014.")) == []

    def test_years_kept_when_configured(self):
        config = ClaimDetectionConfig(skip_years=False)
        claims = detect_claims(doc("The rule changed in 2014."), config)
        assert len(claims) == 1

    def test_ordinals_skipped(self):
        assert detect_claims(doc("It was the third season in a row.")) == []

    def test_ordinals_kept_when_configured(self):
        config = ClaimDetectionConfig(skip_ordinals=False)
        assert len(detect_claims(doc("It was the third season."), config)) == 1

    def test_ordinals_stable(self):
        claims = detect_claims(doc("First 3 wins.", "Then 5 losses."))
        assert [c.ordinal for c in claims] == [0, 1]

    def test_claim_key_distinguishes_same_value(self):
        claims = detect_claims(doc("4 wins at home and 4 away."))
        assert len(claims) == 2
        assert claims[0].key() != claims[1].key()

    def test_document_order(self):
        claims = detect_claims(
            doc("Alpha had 10 wins.", "Beta had 20 wins. Gamma had 30.")
        )
        assert [c.claimed_value for c in claims] == [10, 20, 30]
