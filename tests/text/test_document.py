"""Unit tests for the hierarchical document model and HTML parsing."""

from __future__ import annotations

import pytest

from repro.errors import DocumentError
from repro.text import Document, parse_html

HTML = """
<html><head><title>NFL Suspensions</title></head><body>
<h1>The NFL's Uneven History</h1>
<p>The league suspended many players. Most bans were short.</p>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
<p>A second paragraph here.</p>
<h2>Recent cases</h2>
<p>Two cases happened in 2014.</p>
</body></html>
"""


class TestParseHtml:
    def test_title(self):
        document = parse_html(HTML)
        assert document.title == "NFL Suspensions"

    def test_section_hierarchy(self):
        document = parse_html(HTML)
        h1 = document.root.subsections[0]
        assert h1.headline == "The NFL's Uneven History"
        assert [s.headline for s in h1.subsections] == [
            "Lifetime bans",
            "Recent cases",
        ]

    def test_paragraphs_attached_to_sections(self):
        document = parse_html(HTML)
        h2 = document.root.subsections[0].subsections[0]
        assert len(h2.paragraphs) == 2

    def test_sentences_split(self):
        document = parse_html(HTML)
        h2 = document.root.subsections[0].subsections[0]
        assert len(h2.paragraphs[0].sentences) == 2

    def test_ancestors_chain(self):
        document = parse_html(HTML)
        h2 = document.root.subsections[0].subsections[0]
        headlines = [s.headline for s in h2.ancestors()]
        assert headlines == [
            "Lifetime bans",
            "The NFL's Uneven History",
            "NFL Suspensions",
        ]

    def test_sibling_sections_do_not_nest(self):
        document = parse_html(HTML)
        h1 = document.root.subsections[0]
        recent = h1.subsections[1]
        assert recent.parent is h1

    def test_empty_html_rejected(self):
        with pytest.raises(DocumentError):
            parse_html("   ")

    def test_text_only_html_rejected(self):
        with pytest.raises(DocumentError):
            parse_html("<div></div>")

    def test_entities_decoded(self):
        document = parse_html("<p>Tom &amp; Jerry won 3 games.</p>")
        assert "Tom & Jerry" in document.sentences()[0].text

    def test_nested_markup_inside_paragraph(self):
        document = parse_html("<p>It was <b>four</b> bans.</p>")
        assert document.sentences()[0].text == "It was four bans."

    def test_deeper_heading_after_shallow(self):
        document = parse_html("<h1>A</h1><h3>B</h3><p>text here.</p>")
        h1 = document.root.subsections[0]
        assert h1.subsections[0].headline == "B"
        assert h1.subsections[0].paragraphs


class TestDocumentModel:
    def test_from_plain_text(self):
        document = Document.from_plain_text("T", ["One. Two.", "Three."])
        assert len(document.paragraphs()) == 2
        assert len(document.sentences()) == 3

    def test_sentence_links(self):
        document = Document.from_plain_text("T", ["First. Second."])
        first, second = document.sentences()
        assert second.previous is first
        assert first.previous is None
        assert first.is_paragraph_start

    def test_sentence_tokens_cached(self):
        document = Document.from_plain_text("T", ["Count 4 bans."])
        sentence = document.sentences()[0]
        assert sentence.tokens is sentence.tokens

    def test_empty_paragraphs_dropped(self):
        document = Document.from_plain_text("T", ["  ", "Real text."])
        assert len(document.paragraphs()) == 1

    def test_document_text_includes_headlines(self):
        document = parse_html(HTML)
        text = document.text()
        assert "Lifetime bans" in text and "gambling" in text

    def test_empty_sentence_rejected(self):
        from repro.text.document import Paragraph, Section, Sentence

        with pytest.raises(DocumentError):
            Sentence("  ", Paragraph(Section()), 0)
