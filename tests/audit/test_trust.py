"""Unit tests for the per-database trust ladder."""

from __future__ import annotations

import threading

import pytest

from repro.audit.trust import TrustLadder, TrustLevel

FP = "a" * 64
OTHER = "b" * 64


class TestTransitions:
    def test_unknown_database_is_fully_trusted(self):
        assert TrustLadder().level(FP) is TrustLevel.FULL

    def test_each_divergence_demotes_one_rung(self):
        ladder = TrustLadder()
        assert ladder.record_divergence(FP) is TrustLevel.DISK_BYPASS
        assert ladder.record_divergence(FP) is TrustLevel.ORACLE_ONLY
        assert ladder.level(FP) is TrustLevel.ORACLE_ONLY
        assert ladder.demotions == 2

    def test_bottom_rung_is_absorbing(self):
        ladder = TrustLadder()
        for _ in range(5):
            ladder.record_divergence(FP)
        assert ladder.level(FP) is TrustLevel.ORACLE_ONLY
        assert ladder.demotions == 2  # rungs below ORACLE_ONLY don't exist

    def test_consecutive_clean_audits_promote(self):
        ladder = TrustLadder(recover_after=3)
        ladder.record_divergence(FP)
        ladder.record_clean(FP)
        ladder.record_clean(FP)
        assert ladder.level(FP) is TrustLevel.DISK_BYPASS  # streak = 2 < 3
        assert ladder.record_clean(FP) is TrustLevel.FULL
        assert ladder.promotions == 1

    def test_batched_clean_checks_count_individually(self):
        ladder = TrustLadder(recover_after=4)
        ladder.record_divergence(FP)
        assert ladder.record_clean(FP, checks=4) is TrustLevel.FULL

    def test_divergence_resets_the_clean_streak(self):
        ladder = TrustLadder(recover_after=2)
        ladder.record_divergence(FP)
        ladder.record_clean(FP)
        ladder.record_divergence(FP)  # streak back to 0, rung down again
        ladder.record_clean(FP)
        assert ladder.level(FP) is TrustLevel.ORACLE_ONLY
        ladder.record_clean(FP)
        assert ladder.level(FP) is TrustLevel.DISK_BYPASS

    def test_promotion_climbs_one_rung_at_a_time(self):
        ladder = TrustLadder(recover_after=1)
        ladder.record_divergence(FP)
        ladder.record_divergence(FP)
        assert ladder.record_clean(FP) is TrustLevel.DISK_BYPASS
        assert ladder.record_clean(FP) is TrustLevel.FULL

    def test_clean_audits_at_full_trust_are_no_ops(self):
        ladder = TrustLadder(recover_after=1)
        ladder.record_clean(FP)
        assert ladder.promotions == 0
        assert ladder.level(FP) is TrustLevel.FULL

    def test_recover_after_must_be_positive(self):
        with pytest.raises(ValueError, match="recover_after"):
            TrustLadder(recover_after=0)


class TestReporting:
    def test_degraded_tracks_any_database_below_full(self):
        ladder = TrustLadder(recover_after=1)
        assert not ladder.degraded()
        ladder.record_divergence(FP)
        assert ladder.degraded()
        ladder.record_clean(FP)
        assert not ladder.degraded()

    def test_stats_reports_only_noteworthy_databases(self):
        ladder = TrustLadder(recover_after=1)
        ladder.record_clean(OTHER)  # never diverged: not reported
        ladder.record_divergence(FP)
        stats = ladder.stats()
        assert set(stats["databases"]) == {FP}
        assert stats["databases"][FP]["level"] == "disk_bypass"
        assert stats["databases"][FP]["divergences"] == 1
        assert stats["degraded"] is True
        # A recovered database keeps its divergence history visible.
        ladder.record_clean(FP)
        stats = ladder.stats()
        assert stats["databases"][FP]["level"] == "full"
        assert stats["degraded"] is False

    def test_thread_safety_under_concurrent_updates(self):
        ladder = TrustLadder(recover_after=2)

        def hammer():
            for _ in range(200):
                ladder.record_divergence(FP)
                ladder.record_clean(FP)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert ladder.level(FP) in tuple(TrustLevel)
        stats = ladder.stats()
        assert stats["databases"][FP]["divergences"] == 800
