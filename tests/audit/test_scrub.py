"""Offline integrity scrub: every persisted tier, every corruption class.

Each tier's contract: structural corruption (bit flips under the CRC
framing) is *detected and contained* (quarantine / skip / truncated-tail
stop), semantic corruption (a cell poisoned before its checksum was
taken) is caught only by the recompute pass — and a second scrub over
the repaired state reports clean.
"""

from __future__ import annotations

import json

import pytest

from repro.audit.scrub import (
    _bit_equal,
    scrub_checkpoint,
    scrub_disk_cache,
    scrub_journal,
    scrub_state,
)
from repro.db import (
    Column,
    ColumnType,
    Database,
    DiskCubeCache,
    EngineConfig,
    QueryEngine,
    Table,
)
from repro.db.diskcache import fingerprint_of
from repro.db.engine import EngineStats
from repro.faults import FaultSpec, active
from repro.harness.checkpoint import CorpusCheckpoint, scan_checkpoint
from repro.service.queue import _encode_record, scan_journal


def small_db(rows=None) -> Database:
    table = Table(
        "events",
        [Column("kind"), Column("score", ColumnType.NUMERIC)],
        rows
        if rows is not None
        else [("a", 1), ("a", 2), ("b", 3), (None, 4)],
    )
    return Database("d", [table])


def count_by_kind(db):
    from repro.db import parse_query

    return parse_query("SELECT Count(*) FROM events WHERE kind = 'a'", db)


def warm_cache(tmp_path, db=None):
    db = db or small_db()
    QueryEngine(db, EngineConfig(cache_dir=tmp_path)).evaluate(
        [count_by_kind(db)]
    )
    return db


class TestBitEqual:
    def test_type_strict(self):
        assert not _bit_equal(1, 1.0)
        assert not _bit_equal(True, 1)
        assert _bit_equal(1, 1)

    def test_float_reprs(self):
        assert _bit_equal(0.1 + 0.2, 0.30000000000000004)
        assert not _bit_equal(0.3, 0.1 + 0.2)
        assert not _bit_equal(0.0, -0.0)
        assert _bit_equal(float("nan"), float("nan"))


class TestBitflipAction:
    @pytest.mark.faults
    def test_bitflip_flips_one_middle_byte(self, tmp_path):
        from repro.faults import fire

        target = tmp_path / "victim.bin"
        original = bytes(range(16))
        target.write_bytes(original)
        with active(FaultSpec("audit.bitflip", "bitflip", match="victim*")):
            fire("audit.bitflip", key="victim.bin", payload=target)
        flipped = target.read_bytes()
        assert len(flipped) == len(original)
        assert flipped != original
        diffs = [i for i, (a, b) in enumerate(zip(original, flipped)) if a != b]
        assert diffs == [len(original) // 2]
        assert flipped[diffs[0]] == original[diffs[0]] ^ 0x40


class TestDiskCacheStructural:
    @pytest.mark.faults
    def test_injected_bitflip_is_caught_by_the_crc(self, tmp_path):
        # Flip one byte of the entry file after the atomic write: framing
        # still parses as far as the magic goes, but the CRC disagrees.
        db = small_db()
        with active(FaultSpec("audit.bitflip", "bitflip", match="*.cube")):
            warm_cache(tmp_path, db)
        engine = QueryEngine(db, EngineConfig(cache_dir=tmp_path))
        cache = engine.disk_cache
        results = engine.evaluate([count_by_kind(db)])
        assert results[count_by_kind(db)] == 2  # recomputed, still right
        assert cache.stats.corrupt == 1
        assert engine.stats.disk_corrupt == 1
        assert list(tmp_path.glob("*.cube.corrupt"))

    def test_scrub_quarantines_structural_corruption(self, tmp_path):
        warm_cache(tmp_path)
        [entry] = list(tmp_path.glob("*.cube"))
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0x01
        entry.write_bytes(bytes(blob))
        report = scrub_disk_cache(tmp_path)
        assert report["scanned"] == 1
        assert report["structural_corrupt"] == 1
        assert report["quarantined"] == 1
        assert not list(tmp_path.glob("*.cube"))
        # Second pass: nothing live, prior quarantine still visible.
        again = scrub_disk_cache(tmp_path)
        assert again["corrupt"] == 0
        assert again["previously_quarantined"] == 1

    def test_scrub_without_databases_is_structural_only(self, tmp_path):
        warm_cache(tmp_path)
        report = scrub_disk_cache(tmp_path)
        assert report["ok"] == report["scanned"] == 1
        assert report["skipped_semantic"] == 1
        assert report["corrupt"] == 0


class TestDiskCacheSemantic:
    @pytest.mark.faults
    def test_poisoned_cell_survives_crc_but_not_recompute(self, tmp_path):
        # The cell is corrupted BEFORE the checksum is computed: the file
        # is structurally pristine and only the recompute catches it.
        db = small_db()
        with active(FaultSpec("audit.bitflip", "raise", match="cell:*")):
            warm_cache(tmp_path, db)
        structural = scrub_disk_cache(tmp_path)
        assert structural["corrupt"] == 0  # CRC is (correctly) silent
        semantic = scrub_disk_cache(tmp_path, [db])
        assert semantic["semantic_mismatch"] == 1
        assert semantic["quarantined"] == 1
        assert not list(tmp_path.glob("*.cube"))

    def test_clean_entries_pass_the_recompute(self, tmp_path):
        db = warm_cache(tmp_path)
        report = scrub_disk_cache(tmp_path, [db])
        assert report["ok"] == report["scanned"] == 1
        assert report["skipped_semantic"] == 0
        assert report["corrupt"] == 0

    def test_unknown_fingerprint_skips_semantic(self, tmp_path):
        warm_cache(tmp_path)
        other = small_db([("z", 9)])
        report = scrub_disk_cache(tmp_path, [other])
        assert report["skipped_semantic"] == 1
        assert report["corrupt"] == 0


class TestInvalidateAndMinRows:
    def test_invalidate_drops_only_the_owning_database(self, tmp_path):
        db_a = warm_cache(tmp_path)
        db_b = small_db([("a", 1), ("b", 2), ("b", 3)])
        warm_cache(tmp_path, db_b)
        cache = DiskCubeCache(tmp_path)
        assert len(cache.entries()) == 2
        removed = cache.invalidate(fingerprint_of(db_a))
        assert removed == 1
        assert cache.paths_for(fingerprint_of(db_a)) == []
        assert len(cache.paths_for(fingerprint_of(db_b))) == 1

    def test_min_rows_threshold_skips_the_disk_tier(self, tmp_path):
        db = small_db()  # 4 rows
        engine = QueryEngine(
            db, EngineConfig(cache_dir=tmp_path, disk_cache_min_rows=100)
        )
        results = engine.evaluate([count_by_kind(db)])
        assert results[count_by_kind(db)] == 2
        assert engine.disk_cache is None
        assert engine.stats.disk_skipped_small == 1
        assert engine.stats.disk_hits == engine.stats.disk_misses == 0
        assert not list(tmp_path.glob("*.cube"))

    def test_min_rows_threshold_admits_large_databases(self, tmp_path):
        db = small_db()
        engine = QueryEngine(
            db, EngineConfig(cache_dir=tmp_path, disk_cache_min_rows=4)
        )
        engine.evaluate([count_by_kind(db)])
        assert engine.stats.disk_skipped_small == 0
        assert engine.disk_cache.stats.skipped_small == 0
        assert list(tmp_path.glob("*.cube"))

    def test_stats_field_exists(self):
        assert EngineStats().audit_checks == 0
        assert EngineStats().audit_cell_mismatches == 0


class TestCheckpointFraming:
    SIGS = ["s0", "s1", "s2"]

    def _store(self, tmp_path) -> CorpusCheckpoint:
        return CorpusCheckpoint(tmp_path / "run.ckpt", "cfg", list(self.SIGS))

    def test_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        store.save({0: "r0", 1: "r1"}, {2: "boom"})
        results, quarantined = self._store(tmp_path).load()
        assert results == {0: "r0", 1: "r1"}
        assert quarantined == {2: "boom"}

    def test_truncated_tail_keeps_the_prefix(self, tmp_path):
        store = self._store(tmp_path)
        store.save({0: "r0", 1: "r1"}, {})
        path = tmp_path / "run.ckpt"
        path.write_bytes(path.read_bytes()[:-3])
        fresh = self._store(tmp_path)
        results, _ = fresh.load()
        assert results == {0: "r0"}
        assert fresh.truncated

    def test_bitflipped_record_is_skipped_and_counted(self, tmp_path):
        store = self._store(tmp_path)
        store.save({0: "r0"}, {})
        short = (tmp_path / "run.ckpt").read_bytes()
        store.save({0: "r0", 1: "r1"}, {})
        blob = bytearray((tmp_path / "run.ckpt").read_bytes())
        # Flip a byte inside record 1 (everything past the shorter file).
        blob[len(short) + 10] ^= 0x40
        (tmp_path / "run.ckpt").write_bytes(bytes(blob))
        fresh = self._store(tmp_path)
        results, _ = fresh.load()
        assert results == {0: "r0"}  # record 1 degraded to a recompute
        assert fresh.corrupt_records == 1
        assert not fresh.truncated

    def test_corrupt_header_refuses_the_resume(self, tmp_path):
        from repro.errors import CheckpointError
        from repro.harness.checkpoint import _MAGIC

        store = self._store(tmp_path)
        store.save({0: "r0"}, {})
        blob = bytearray((tmp_path / "run.ckpt").read_bytes())
        blob[len(_MAGIC) + 6] ^= 0x40  # inside the header frame
        (tmp_path / "run.ckpt").write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="corrupt header"):
            self._store(tmp_path).load()

    def test_scan_reports_framing_health(self, tmp_path):
        store = self._store(tmp_path)
        store.save({0: "r0", 1: "r1"}, {2: "boom"})
        scan = scan_checkpoint(tmp_path / "run.ckpt")
        assert scan["format_ok"]
        assert scan["records"] == 4  # header + 2 results + 1 quarantine
        assert scan["corrupt"] == 0 and not scan["truncated"]

    def test_scan_flags_missing_and_foreign_files(self, tmp_path):
        missing = scan_checkpoint(tmp_path / "nope.ckpt")
        assert not missing["present"]
        foreign = tmp_path / "foreign.ckpt"
        foreign.write_bytes(b"not a checkpoint")
        assert not scan_checkpoint(foreign)["format_ok"]

    @pytest.mark.faults
    def test_save_fires_the_bitflip_point(self, tmp_path):
        store = self._store(tmp_path)
        with active(FaultSpec("audit.bitflip", "bitflip", match="run.ckpt")):
            store.save({0: "r0"}, {})
        scan = scan_checkpoint(tmp_path / "run.ckpt")
        assert scan["corrupt"] == 1 or not scan["format_ok"]


class TestJournalScan:
    def _write(self, tmp_path, lines: list[str]):
        path = tmp_path / "queue.journal"
        path.write_text("".join(lines), encoding="utf-8")
        return path

    def _records(self):
        return [
            _encode_record({"op": "put", "id": f"j{i}", "payload": {"x": i}})
            for i in range(3)
        ]

    def test_clean_journal(self, tmp_path):
        path = self._write(tmp_path, self._records())
        scan = scan_journal(path)
        assert scan["records"] == 3
        assert scan["corrupt"] == 0 and not scan["truncated"]

    def test_interior_bitflip_is_counted_and_skipped(self, tmp_path):
        lines = self._records()
        lines[1] = lines[1].replace('"x":1', '"x":7')  # valid JSON, bad CRC
        scan = scan_journal(self._write(tmp_path, lines))
        assert scan["records"] == 2
        assert scan["corrupt"] == 1 and not scan["truncated"]

    def test_truncated_tail_stops_the_scan(self, tmp_path):
        lines = self._records()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # torn final append
        scan = scan_journal(self._write(tmp_path, lines))
        assert scan["records"] == 2
        assert scan["truncated"]

    def test_missing_journal(self, tmp_path):
        scan = scan_journal(tmp_path / "queue.journal")
        assert not scan["present"]
        assert scan["records"] == 0

    def test_scan_never_mutates_the_file(self, tmp_path):
        lines = self._records()
        lines[1] = lines[1].replace('"x":1', '"x":7')
        path = self._write(tmp_path, lines)
        before = path.read_bytes()
        scan_journal(path)
        assert path.read_bytes() == before


class TestScrubState:
    def test_aggregates_every_tier(self, tmp_path):
        db = warm_cache(tmp_path / "cache")
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        (queue_dir / "queue.journal").write_text(
            _encode_record({"op": "put", "id": "j0"}), encoding="utf-8"
        )
        store = CorpusCheckpoint(tmp_path / "run.ckpt", "cfg", ["s0"])
        store.save({0: "r0"}, {})
        report = scrub_state(
            cache_dir=tmp_path / "cache",
            queue_dir=queue_dir,
            checkpoints=[tmp_path / "run.ckpt"],
            databases=[db],
        )
        assert [tier["tier"] for tier in report["tiers"]] == [
            "disk_cache", "queue_journal", "checkpoint",
        ]
        assert report["clean"] and report["corrupt_total"] == 0

    def test_any_corruption_flips_clean(self, tmp_path):
        warm_cache(tmp_path / "cache")
        [entry] = list((tmp_path / "cache").glob("*.cube"))
        entry.write_bytes(b"garbage")
        report = scrub_state(cache_dir=tmp_path / "cache")
        assert not report["clean"]
        assert report["corrupt_total"] == 1
        # The corruption was quarantined: a second scrub is clean.
        assert scrub_state(cache_dir=tmp_path / "cache")["clean"]


class TestScrubCli:
    def test_exit_codes_and_json_report(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        warm_cache(tmp_path / "cache")
        [entry] = list((tmp_path / "cache").glob("*.cube"))
        blob = bytearray(entry.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        entry.write_bytes(bytes(blob))
        code = cli_main(
            ["scrub", "--cache-dir", str(tmp_path / "cache"), "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 4
        assert report["corrupt_total"] == 1
        assert not report["clean"]
        # The corrupt entry is now quarantined: clean second pass, exit 0.
        code = cli_main(
            ["scrub", "--cache-dir", str(tmp_path / "cache"), "--json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["clean"]

    def test_semantic_validation_via_csv(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        csv_path = tmp_path / "events.csv"
        csv_path.write_text("kind,score\na,1\na,2\nb,3\n")
        cache_dir = tmp_path / "cache"
        from repro.db import load_csv

        db = Database("cli", [load_csv(csv_path)])
        with active(FaultSpec("audit.bitflip", "raise", match="cell:*")):
            warm_cache(cache_dir, db)
        code = cli_main(
            ["scrub", "--cache-dir", str(cache_dir),
             "--csv", str(csv_path), "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 4
        assert report["tiers"][0]["semantic_mismatch"] == 1

    def test_no_tier_is_a_usage_error(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["scrub"]) == 2
        assert "nothing to scrub" in capsys.readouterr().err
