"""Shadow verification against a live service: sampled acked groups are
re-executed on the NAIVE/row-wise oracle, injected wrong verdicts are
caught and repaired, and the trust ladder degrades — then heals — the
offending database's cache tiers. Skipped on the no-NumPy leg (full
pipeline) via tests/conftest.py.
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest

from repro.audit.shadow import ShadowAuditor
from repro.audit.trust import TrustLevel
from repro.core.config import AggCheckerConfig
from repro.db import Database, EngineConfig, load_csv
from repro.db.diskcache import fingerprint_of
from repro.faults import FaultSpec, active

from tests.service.test_aio import data_files, serve, wait_for  # noqa: F401
from tests.service.test_server import claims_of, cli_claims, get_json, post_check


def nfl_payload(data_files):
    return {
        "csv": str(data_files["nfl"]),
        "article_path": str(data_files["nfl_article"]),
    }


def nfl_fingerprint(data_files):
    return fingerprint_of(
        Database("nflsuspensions", [load_csv(data_files["nfl"])])
    )


def audited(server, payload, timeout=30.0):
    """Post a document and wait for its shadow audit to complete."""
    events = post_check(server.url, payload)
    assert server.service.auditor.flush(timeout)
    return events


class TestSampling:
    """Producer-side behavior, without a live service."""

    def _auditor(self, **kwargs):
        stub = SimpleNamespace(config=SimpleNamespace(cache_dir=None))
        kwargs.setdefault("rate", 1.0)
        kwargs.setdefault("rng", random.Random(7))
        return ShadowAuditor(stub, **kwargs)

    def test_rate_must_be_a_probability(self):
        with pytest.raises(ValueError, match="audit rate"):
            self._auditor(rate=1.5)

    def test_zero_rate_disables_the_auditor(self):
        auditor = self._auditor(rate=0.0)
        assert not auditor.enabled
        auditor.observe_group("s", "d", {}, [(0, "fp", {"status": "verified"})])
        assert auditor.sampled_groups == 0

    def test_degraded_payloads_are_never_audited(self):
        auditor = self._auditor()
        auditor.observe_group(
            "s", "d", {}, [(0, "fp", {"status": "unresolved", "degraded": True})]
        )
        assert auditor.sampled_groups == 0
        assert auditor.skipped_degraded == 1

    def test_backlog_overflow_drops_rather_than_blocks(self):
        auditor = self._auditor(max_backlog=1)  # thread never started
        for _ in range(3):
            auditor.observe_group("s", "d", {}, [(0, "fp", {"status": "x"})])
        assert auditor.sampled_groups == 3
        assert auditor.dropped_tasks == 2

    def test_oracle_config_strips_every_cache_and_budget(self):
        from repro.db.engine import ExecutionMode

        stub = SimpleNamespace(
            config=AggCheckerConfig(
                claim_deadline=2.0,
                max_rows_materialized=10,
                max_cube_cells=10,
            )
        )
        oracle = ShadowAuditor(stub, rate=1.0).oracle_config()
        assert oracle.execution_mode is ExecutionMode.NAIVE
        assert oracle.backend == "row"
        assert oracle.cache_dir is None
        assert oracle.claim_deadline is None
        assert oracle.max_rows_materialized is None
        assert oracle.max_cube_cells is None


class TestCleanAudit:
    def test_audited_service_reports_zero_divergences(
        self, data_files, capsys
    ):
        server = serve(workers=1, audit_rate=1.0)
        try:
            events = audited(server, nfl_payload(data_files))
            auditor = server.service.auditor
            assert auditor.sampled_groups >= 1
            assert auditor.stats.audit_checks >= len(claims_of(events))
            assert auditor.stats.audit_divergences == 0
            # The audited verdicts ARE the CLI oracle's verdicts.
            assert claims_of(events) == cli_claims(
                capsys, data_files["nfl"], data_files["nfl_article"]
            )
            audit = get_json(server.url + "/audit")
            assert audit["enabled"] and audit["divergences"] == 0
            assert audit["checks"] == auditor.stats.audit_checks
            assert not audit["ladder"]["degraded"]
            health = get_json(server.url + "/health")
            assert health["status"] == "ok"
            assert health["audit"]["checks"] == auditor.stats.audit_checks
            stats = get_json(server.url + "/stats")
            assert stats["engine"]["audit_checks"] >= 1
            assert stats["audit"]["backlog"] == 0
        finally:
            server.shutdown_gracefully()

    def test_disabled_audit_is_explicit_everywhere(self, data_files):
        server = serve(workers=1, audit_rate=0.0)
        try:
            assert server.service.auditor is None
            assert get_json(server.url + "/audit") == {"enabled": False}
            assert get_json(server.url + "/health")["audit"] is None
            assert "audit" not in get_json(server.url + "/stats")
        finally:
            server.shutdown_gracefully()


class TestDivergenceHandling:
    @pytest.mark.faults
    def test_poisoned_verdict_is_caught_repaired_and_demoted(
        self, data_files, capsys
    ):
        server = serve(workers=1, audit_rate=1.0)
        payload = nfl_payload(data_files)
        try:
            with active(
                FaultSpec("audit.bitflip", "raise", match="verdict:*")
            ):
                poisoned = audited(server, payload)
            auditor = server.service.auditor
            oracle = cli_claims(
                capsys, data_files["nfl"], data_files["nfl_article"]
            )
            # The served verdicts really were wrong...
            assert claims_of(poisoned) != oracle
            # ...the shadow audit caught it...
            assert auditor.stats.audit_divergences >= 1
            assert auditor.stats.audit_repairs >= 1
            assert auditor.recent_divergences
            entry = auditor.recent_divergences[0]
            assert entry["served_status"] != entry["expected_status"]
            # ...the database lost a trust rung...
            fp = nfl_fingerprint(data_files)
            assert auditor.ladder.level(fp) is TrustLevel.DISK_BYPASS
            assert get_json(server.url + "/health")["status"] == "degraded"
            audit = get_json(server.url + "/audit")
            assert audit["ladder"]["databases"][fp]["level"] == "disk_bypass"
            # ...and the memo was repaired in place: the same request now
            # serves the oracle's verdicts from cache.
            repaired = post_check(server.url, payload)
            assert all(
                e["cached"] for e in repaired if e["event"] == "claim"
            )
            assert claims_of(repaired) == oracle
        finally:
            server.shutdown_gracefully()

    def test_disk_bypass_groups_still_serve_oracle_verdicts(
        self, data_files, capsys
    ):
        server = serve(workers=1, audit_rate=1.0, trust_recover_after=1)
        fp = nfl_fingerprint(data_files)
        try:
            server.service.auditor.ladder.record_divergence(fp)
            events = audited(server, nfl_payload(data_files))
            auditor = server.service.auditor
            assert auditor.disk_bypassed_groups >= 1
            assert claims_of(events) == cli_claims(
                capsys, data_files["nfl"], data_files["nfl_article"]
            )
            # The clean audit promoted the database straight back.
            assert auditor.ladder.level(fp) is TrustLevel.FULL
        finally:
            server.shutdown_gracefully()

    def test_oracle_only_groups_still_serve_oracle_verdicts(
        self, data_files, capsys
    ):
        server = serve(workers=1, audit_rate=1.0)
        fp = nfl_fingerprint(data_files)
        try:
            ladder = server.service.auditor.ladder
            ladder.record_divergence(fp)
            ladder.record_divergence(fp)
            assert ladder.level(fp) is TrustLevel.ORACLE_ONLY
            events = audited(server, nfl_payload(data_files))
            assert server.service.auditor.oracle_groups >= 1
            assert claims_of(events) == cli_claims(
                capsys, data_files["nfl"], data_files["nfl_article"]
            )
        finally:
            server.shutdown_gracefully()


class TestCellScrub:
    def test_each_audit_deep_scrubs_disk_cache_cells(
        self, data_files, tmp_path
    ):
        config = AggCheckerConfig(engine=EngineConfig(cache_dir=str(tmp_path / "cube-cache")))
        server = serve(workers=1, audit_rate=1.0, config=config)
        try:
            server.service.auditor.scrub_cells = 100
            audited(server, nfl_payload(data_files))
            auditor = server.service.auditor
            assert auditor.stats.audit_cell_scrubs >= 1
            assert auditor.stats.audit_cell_mismatches == 0
        finally:
            server.shutdown_gracefully()

    @pytest.mark.faults
    def test_semantically_poisoned_cell_is_quarantined_and_demoted(
        self, data_files, tmp_path
    ):
        cache_dir = tmp_path / "cube-cache"
        config = AggCheckerConfig(engine=EngineConfig(cache_dir=str(cache_dir)))
        server = serve(workers=1, audit_rate=1.0, config=config)
        fp = nfl_fingerprint(data_files)
        try:
            server.service.auditor.scrub_cells = 100
            # Poison one cube cell BEFORE its CRC is computed: the file
            # is structurally valid, only the recompute can notice.
            with active(
                FaultSpec("audit.bitflip", "raise", match="cell:*")
            ):
                audited(server, nfl_payload(data_files))
            auditor = server.service.auditor
            assert auditor.stats.audit_cell_mismatches >= 1
            assert auditor.ladder.level(fp) is not TrustLevel.FULL
            assert list(cache_dir.glob("*.corrupt"))
        finally:
            server.shutdown_gracefully()
